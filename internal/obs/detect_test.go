package obs

import (
	"math"
	"testing"
)

func TestLatchSustainAndRefire(t *testing.T) {
	var l latch
	if l.update(true, 2) {
		t.Fatal("fired before sustain count reached")
	}
	if !l.update(true, 2) {
		t.Fatal("did not fire at sustain count")
	}
	if l.update(true, 2) {
		t.Fatal("re-fired while the episode was still active")
	}
	// Clearing the condition closes the episode; the next sustained run
	// opens a fresh one.
	if l.update(false, 2) {
		t.Fatal("fired on a cleared condition")
	}
	l.update(true, 2)
	if !l.update(true, 2) {
		t.Fatal("did not fire on the second episode")
	}
}

func TestLatchTransientRejected(t *testing.T) {
	var l latch
	for i := 0; i < 10; i++ {
		if l.update(i%2 == 0, 2) {
			t.Fatal("alternating one-tick transients must never fire with sustain 2")
		}
	}
}

func TestFlapRingWindow(t *testing.T) {
	var f flapRing
	for _, at := range []float64{10, 50, 100} {
		f.push(at)
	}
	// The window is half-open: an entry exactly at `since` is already out.
	if got := f.countSince(9); got != 3 {
		t.Fatalf("countSince(9) = %d, want 3", got)
	}
	if got := f.countSince(10); got != 2 {
		t.Fatalf("countSince(10) = %d, want 2", got)
	}
	if got := f.countSince(60); got != 1 {
		t.Fatalf("countSince(60) = %d, want 1", got)
	}
	// Overflow past the ring capacity keeps only the newest entries.
	for i := 0; i < 20; i++ {
		f.push(200 + float64(i))
	}
	if got := f.countSince(0); got != 8 {
		t.Fatalf("after overflow countSince(0) = %d, want ring capacity 8", got)
	}
}

// TestUPSGaugeDriftDirection pins the gauge-consistency check's asymmetry:
// an honest discharge accumulates no drift (observed SoC falls at least as
// fast as the delivered energy requires), while a gauge reading high — SoC
// frozen during discharge — accumulates drift and fires the UPS detector.
func TestUPSGaugeDriftDirection(t *testing.T) {
	cfg := DefaultDetectorConfig()

	honest := NewPlane(0, cfg)
	soc := 1.0
	for i := 0; i < 60; i++ {
		// 400 Wh capacity, 720 W delivered: SoC drops 0.0005 per 1 s tick —
		// exactly the physically possible trajectory.
		honest.ObserveTick(float64(i), TickSignals{
			SoC: soc, UPSDeliveredW: 720, UPSCapacityWh: 400, TripMargin: 0.5, Confidence: 1,
		})
		soc -= 720.0 / 3600 / 400
	}
	for _, a := range honest.Alerts() {
		if a.Detector == DetectorUPS {
			t.Fatalf("honest discharge raised a UPS alert: %+v", a)
		}
	}

	lying := NewPlane(0, cfg)
	for i := 0; i < 60; i++ {
		// Same delivery, but the gauge never moves.
		lying.ObserveTick(float64(i), TickSignals{
			SoC: 1.0, UPSDeliveredW: 720, UPSCapacityWh: 400, TripMargin: 0.5, Confidence: 1,
		})
	}
	var fired bool
	for _, a := range lying.Alerts() {
		if a.Detector == DetectorUPS {
			fired = true
		}
	}
	if !fired {
		t.Fatal("frozen gauge during discharge did not raise a UPS alert")
	}
}

func TestSensorDetectorGapAndConfidence(t *testing.T) {
	cfg := DefaultDetectorConfig()
	for name, sig := range map[string]TickSignals{
		"confidence": {TripMargin: 0.5, SoC: 1, Confidence: cfg.ConfidenceFloor / 2},
		"gap":        {TripMargin: 0.5, SoC: 1, Confidence: 1, SensorGapW: cfg.SensorGapW * 2},
	} {
		p := NewPlane(0, cfg)
		for i := 0; i <= cfg.SustainTicks; i++ {
			p.ObserveTick(float64(i), sig)
		}
		var fired bool
		for _, a := range p.Alerts() {
			if a.Detector == DetectorSensor {
				fired = true
			}
		}
		if !fired {
			t.Fatalf("%s violation did not fire the sensor detector", name)
		}
	}
}

func TestLeaseFlapDetector(t *testing.T) {
	cfg := DefaultDetectorConfig()
	p := NewPlane(0, cfg)
	// FlapCount expiries inside FlapWindowS: the churn detector fires on
	// the last one; each expiry also raises its own rack-degraded alert.
	step := cfg.FlapWindowS / float64(cfg.FlapCount+1)
	for i := 0; i < cfg.FlapCount; i++ {
		now := float64(i) * step
		p.LeaseExpired(now, uint64(i+1))
		p.LeaseResynced(now+1, uint64(i+2))
	}
	var flap, degraded int
	for _, a := range p.Alerts() {
		switch a.Detector {
		case DetectorLeaseFlap:
			flap++
		case DetectorRackDegraded:
			degraded++
			if a.SpanID == 0 {
				t.Fatal("rack-degraded alert lost its degraded-span anchor")
			}
		}
	}
	if flap != 1 {
		t.Fatalf("lease-flap fired %d times, want 1", flap)
	}
	if degraded != cfg.FlapCount {
		t.Fatalf("rack-degraded fired %d times, want %d", degraded, cfg.FlapCount)
	}
	// Each resync closed its degraded span.
	for _, s := range p.Spans() {
		if s.Kind == "degraded" && s.Open() {
			t.Fatalf("degraded span %d left open after resync", s.ID)
		}
	}
}

func TestObserveBeatAgeSilentLatch(t *testing.T) {
	cfg := DefaultDetectorConfig()
	p := NewPlane(CoordinatorSource, cfg)
	grant := uint64(7)
	// Fresh beats: no alert however long we watch.
	for i := 0; i < 20; i++ {
		p.ObserveBeatAge(float64(i), 2, 1, grant)
	}
	if n := len(p.Alerts()); n != 0 {
		t.Fatalf("fresh heartbeats raised %d alerts", n)
	}
	// Age climbing past the threshold fires once, with the last grant as
	// the causal anchor; NaN age (no beat ever) counts as silent too.
	for i := 0; i < 10; i++ {
		p.ObserveBeatAge(float64(20+i), 2, cfg.SilentAfterS+float64(i), grant)
	}
	p.ObserveBeatAge(40, 3, math.NaN(), grant)
	p.ObserveBeatAge(41, 3, math.NaN(), grant)
	p.ObserveBeatAge(42, 3, math.NaN(), grant)
	alerts := p.Alerts()
	var r2, r3 int
	for _, a := range alerts {
		if a.Detector != DetectorRackSilent {
			t.Fatalf("unexpected detector %q", a.Detector)
		}
		if a.SpanID != grant {
			t.Fatalf("silent alert anchor = %d, want grant %d", a.SpanID, grant)
		}
		switch a.Rack {
		case 2:
			r2++
		case 3:
			r3++
		}
	}
	if r2 != 1 {
		t.Fatalf("rack 2 silent fired %d times, want 1", r2)
	}
	if r3 != 0 {
		t.Fatalf("rack 3 (NaN age) fired %d times, want 0 — NaN must not satisfy age > threshold", r3)
	}
}

// TestNilPlaneNoOps pins the zero-cost-when-disabled contract: every hook
// on a nil plane returns without touching anything.
func TestNilPlaneNoOps(t *testing.T) {
	var p *Plane
	p.ObserveTick(0, TickSignals{})
	p.ObserveControl(0, 1, "m")
	p.ObserveLink(1)
	p.LeaseAccepted(0, 1, 1)
	p.LeaseExpired(0, 1)
	p.LeaseResynced(0, 1)
	p.HeartbeatSent(0, 1)
	p.ObserveBeatAge(0, 0, 99, 0)
	if p.GrantSpan(0, 0, 1, false, false, 0) != 0 {
		t.Fatal("nil GrantSpan must return 0")
	}
	if p.Alerts() != nil || p.Spans() != nil || p.Degraded() || p.Tracer() != nil {
		t.Fatal("nil plane leaked state")
	}
}
