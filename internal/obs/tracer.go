package obs

import (
	"math"
	"sort"
	"sync"

	"sprintcon/internal/telemetry"
)

// Tracer collects causal spans for one emitting source — a rack's control
// plane or the cluster coordinator. Span IDs are deterministic: each source
// owns a namespace ((source+1) << sourceShift) and numbers its spans with a
// monotone counter, so two identical seeded runs emit identical IDs and the
// coordinator's and racks' IDs never collide. A nil Tracer is a valid
// disabled tracer: every method no-ops (and costs one nil check), matching
// the telemetry package's zero-cost-when-disabled contract.
//
// The mutex makes the tracer safe for the lock-step cluster loop, where the
// coordinating goroutine touches a rack's tracer in the grant/heartbeat
// phases and the rack's own goroutine in the physics phase; the loop's
// phase barriers order those accesses, so the emission order — and with it
// the trace — stays deterministic.
type Tracer struct {
	mu     sync.Mutex
	source int
	seq    uint64
	spans  []telemetry.Span
}

// sourceShift positions the source namespace above the per-source sequence
// counter: 2^40 spans per source before collision, far beyond any run.
const sourceShift = 40

// CoordinatorSource is the Tracer source ID of the cluster coordinator.
const CoordinatorSource = -1

// NewTracer returns an enabled tracer for the given source (a rack index,
// or CoordinatorSource).
func NewTracer(source int) *Tracer {
	return &Tracer{source: source, spans: make([]telemetry.Span, 0, 256)}
}

// nextID mints the next span ID. Caller holds the mutex.
func (t *Tracer) nextID() uint64 {
	t.seq++
	return uint64(t.source+1)<<sourceShift | t.seq
}

// Begin opens a span at startS and returns its ID (0 on a nil tracer).
func (t *Tracer) Begin(kind string, rack int, startS float64, parent, leaseVersion uint64) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID()
	t.spans = append(t.spans, telemetry.Span{
		Schema:       telemetry.SpanSchemaVersion,
		ID:           id,
		Parent:       parent,
		Kind:         kind,
		Rack:         rack,
		StartS:       startS,
		EndS:         telemetry.F(math.NaN()),
		LeaseVersion: leaseVersion,
	})
	return id
}

// End closes the identified open span at endS (no-op on a nil tracer, an
// unknown ID, or a span already closed).
func (t *Tracer) End(id uint64, endS float64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Open spans are rare (degraded-mode episodes), and recent; scan from
	// the tail.
	for i := len(t.spans) - 1; i >= 0; i-- {
		if t.spans[i].ID == id {
			if t.spans[i].Open() {
				t.spans[i].EndS = telemetry.F(endS)
			}
			return
		}
	}
}

// Event records an instantaneous span (EndS = StartS) with an optional
// numeric attribute and detail annotation, returning its ID.
func (t *Tracer) Event(kind string, rack int, nowS float64, parent, leaseVersion uint64, attr float64, detail string) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID()
	t.spans = append(t.spans, telemetry.Span{
		Schema:       telemetry.SpanSchemaVersion,
		ID:           id,
		Parent:       parent,
		Kind:         kind,
		Rack:         rack,
		StartS:       nowS,
		EndS:         telemetry.F(nowS),
		LeaseVersion: leaseVersion,
		Attr:         attr,
		Detail:       detail,
	})
	return id
}

// Spans returns a copy of the recorded spans in emission order.
func (t *Tracer) Spans() []telemetry.Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]telemetry.Span(nil), t.spans...)
}

// Len returns the number of recorded spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// MergeSpans interleaves several sources' spans into one deterministic
// trace, ordered by (StartS, ID). The order is total — IDs are unique
// across sources — so the merged trace is identical however goroutines
// interleaved during the run.
func MergeSpans(traces ...[]telemetry.Span) []telemetry.Span {
	var n int
	for _, t := range traces {
		n += len(t)
	}
	out := make([]telemetry.Span, 0, n)
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartS != out[b].StartS {
			return out[a].StartS < out[b].StartS
		}
		return out[a].ID < out[b].ID
	})
	return out
}
