package obs

import (
	"math"
	"testing"
)

func TestWindowStatEviction(t *testing.T) {
	w := NewWindowStat(3, []float64{1, 2, 3})
	for _, v := range []float64{1, 2, 3} {
		w.Push(v)
	}
	if w.Len() != 3 || w.Mean() != 2 || w.Oldest() != 1 || w.Last() != 3 {
		t.Fatalf("full window wrong: len=%d mean=%v oldest=%v last=%v", w.Len(), w.Mean(), w.Oldest(), w.Last())
	}
	w.Push(10) // evicts the 1
	if w.Len() != 3 || w.Oldest() != 2 || w.Last() != 10 {
		t.Fatalf("eviction wrong: len=%d oldest=%v last=%v", w.Len(), w.Oldest(), w.Last())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean after eviction = %v, want 5", got)
	}
}

func TestWindowStatQuantile(t *testing.T) {
	w := NewWindowStat(10, []float64{1, 2, 3})
	for _, v := range []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 2.5} {
		w.Push(v)
	}
	// Nine samples in the ≤1 bucket, one in the ≤3 bucket: p50 resolves to
	// the first bucket's upper bound, p99 to the outlier's.
	if got := w.Quantile(0.50); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := w.Quantile(0.99); got != 3 {
		t.Fatalf("p99 = %v, want 3", got)
	}
	// A sample above every bound lands in the overflow bucket.
	for i := 0; i < 10; i++ {
		w.Push(99)
	}
	if got := w.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("overflow quantile = %v, want +Inf", got)
	}
}

func TestWindowStatNaNAndEmpty(t *testing.T) {
	w := NewWindowStat(4, []float64{1})
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Last()) || !math.IsNaN(w.Quantile(0.5)) {
		t.Fatal("empty window must report NaN")
	}
	w.Push(math.NaN()) // dropped, not stored
	if w.Len() != 0 {
		t.Fatalf("NaN sample stored: len=%d", w.Len())
	}
	var nilW *WindowStat
	nilW.Push(1)
	if nilW.Len() != 0 || !math.IsNaN(nilW.Mean()) {
		t.Fatal("nil window must no-op")
	}
}

func TestWindowStatSlope(t *testing.T) {
	w := NewWindowStat(5, []float64{1})
	w.Push(10)
	if !math.IsNaN(w.Slope()) {
		t.Fatal("single-sample slope must be NaN")
	}
	for _, v := range []float64{8, 6, 4, 2} {
		w.Push(v)
	}
	if got := w.Slope(); got != -2 {
		t.Fatalf("slope = %v, want -2", got)
	}
}

func TestWindowStatPushNoAlloc(t *testing.T) {
	w := NewWindowStat(HealthWindow, []float64{0.25, 0.5, 0.75})
	v := 0.1
	allocs := testing.AllocsPerRun(1000, func() {
		w.Push(v)
		v += 0.001
	})
	if allocs != 0 {
		t.Fatalf("Push allocates %v per call, want 0", allocs)
	}
}
