package obs

import (
	"math"
	"sort"

	"sprintcon/internal/telemetry"
)

// WindowStat is a sliding-window aggregate over the last `window` samples:
// a ring buffer for eviction plus a fixed-bucket histogram for approximate
// quantiles. Everything is preallocated at construction, so Push is
// allocation-free — the property the tick path requires — and quantiles
// are deterministic (bucket upper bounds, never interpolated positions).
type WindowStat struct {
	buf    []float64 // ring storage, len = capacity
	head   int       // next write position
	n      int       // live samples, ≤ len(buf)
	bounds []float64 // ascending bucket upper bounds; implicit +Inf follows
	counts []int     // len(bounds)+1, bucket occupancy of the live window
	sum    float64
}

// NewWindowStat returns a window of the given sample capacity with the
// given ascending bucket upper bounds (copied).
func NewWindowStat(window int, bounds []float64) *WindowStat {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &WindowStat{
		buf:    make([]float64, window),
		bounds: b,
		counts: make([]int, len(b)+1),
	}
}

// bucket returns the histogram bucket index for v.
func (w *WindowStat) bucket(v float64) int {
	return sort.SearchFloat64s(w.bounds, v)
}

// Push adds a sample, evicting the oldest when the window is full. NaN
// samples are dropped (a gauge read before its source exists — e.g. lease
// age with no lease — simply does not occupy the window).
func (w *WindowStat) Push(v float64) {
	if w == nil || math.IsNaN(v) {
		return
	}
	if w.n == len(w.buf) {
		old := w.buf[w.head]
		w.counts[w.bucket(old)]--
		w.sum -= old
		w.n--
	}
	w.buf[w.head] = v
	w.head = (w.head + 1) % len(w.buf)
	w.counts[w.bucket(v)]++
	w.sum += v
	w.n++
}

// Len returns the live sample count.
func (w *WindowStat) Len() int {
	if w == nil {
		return 0
	}
	return w.n
}

// Last returns the most recent sample (NaN when empty).
func (w *WindowStat) Last() float64 {
	if w == nil || w.n == 0 {
		return math.NaN()
	}
	i := w.head - 1
	if i < 0 {
		i += len(w.buf)
	}
	return w.buf[i]
}

// Oldest returns the oldest live sample (NaN when empty).
func (w *WindowStat) Oldest() float64 {
	if w == nil || w.n == 0 {
		return math.NaN()
	}
	i := w.head - w.n
	if i < 0 {
		i += len(w.buf)
	}
	return w.buf[i]
}

// Mean returns the window mean (NaN when empty).
func (w *WindowStat) Mean() float64 {
	if w == nil || w.n == 0 {
		return math.NaN()
	}
	return w.sum / float64(w.n)
}

// Slope returns the per-sample trend (last − oldest)/(n−1), i.e. the mean
// increment across the window; NaN with fewer than two samples. Multiplied
// by the sampling period it is the quantity's rate of change.
func (w *WindowStat) Slope() float64 {
	if w == nil || w.n < 2 {
		return math.NaN()
	}
	return (w.Last() - w.Oldest()) / float64(w.n-1)
}

// Quantile returns the q-quantile (q in [0,1]) as the upper bound of the
// bucket holding the rank-⌈q·n⌉ sample — a deterministic overestimate of at
// most one bucket width. NaN when the window is empty; +Inf when the rank
// lands in the overflow bucket.
func (w *WindowStat) Quantile(q float64) float64 {
	if w == nil || w.n == 0 {
		return math.NaN()
	}
	rank := int(math.Ceil(q * float64(w.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int
	for i, c := range w.counts {
		cum += c
		if cum >= rank {
			if i < len(w.bounds) {
				return w.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// HealthWindow is the number of tick samples a rack's rollup windows hold:
// at the default 1 s tick, two minutes of history — long enough to cover a
// full overload window's burn, short enough that a health view reflects the
// current regime rather than the whole run.
const HealthWindow = 120

// RackHealth is one rack's streaming rollup set. Windows are preallocated;
// the tick path only pushes samples. The exported quantile gauges (bound
// via Bind) are refreshed by Publish on the control-period cadence, keeping
// the per-tick cost to the ring updates alone.
type RackHealth struct {
	TripMargin *WindowStat // 1 − breaker thermal fraction
	SoC        *WindowStat // observed UPS state of charge
	LeaseAge   *WindowStat // seconds since the live lease was issued
	Occupancy  *WindowStat // 1 when the rack's CB budget exceeds rated (overload slot held)
	Sweeps     *WindowStat // QP solver sweeps per control period

	gauges []gaugeBinding
}

// gaugeBinding maps one (window, quantile) pair to a registry gauge.
type gaugeBinding struct {
	w *WindowStat
	q float64 // quantile; <0 selects the mean
	g *telemetry.Gauge
}

// NewRackHealth returns the rollup set with the standard windows/buckets.
func NewRackHealth() *RackHealth {
	unit := telemetry.LinearBuckets(0.02, 0.02, 50) // [0,1] quantities, 0.02 resolution
	return &RackHealth{
		TripMargin: NewWindowStat(HealthWindow, unit),
		SoC:        NewWindowStat(HealthWindow, unit),
		LeaseAge:   NewWindowStat(HealthWindow, telemetry.LinearBuckets(0.5, 0.5, 48)),
		Occupancy:  NewWindowStat(HealthWindow, []float64{0, 1}),
		Sweeps:     NewWindowStat(HealthWindow, []float64{0, 1, 2, 3, 5, 8, 12, 20, 50, 100, 200, 500}),
	}
}

// Bind registers the rollup quantile gauges on reg under the given name
// prefix (e.g. "obs_"). Safe to skip entirely: an unbound health set still
// accumulates and serves snapshots.
func (h *RackHealth) Bind(reg *telemetry.Registry, prefix string) {
	if h == nil || reg == nil {
		return
	}
	add := func(w *WindowStat, name, help string) {
		for _, t := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			g := reg.Gauge(prefix+name+"_"+t.suffix, help+" ("+t.suffix+" over the rollup window)")
			h.gauges = append(h.gauges, gaugeBinding{w: w, q: t.q, g: g})
		}
		g := reg.Gauge(prefix+name+"_mean", help+" (mean over the rollup window)")
		h.gauges = append(h.gauges, gaugeBinding{w: w, q: -1, g: g})
	}
	add(h.TripMargin, "trip_margin", "breaker trip margin 1-theta/budget")
	add(h.SoC, "soc", "observed UPS state of charge")
	add(h.LeaseAge, "lease_age_seconds", "age of the live control lease")
	add(h.Occupancy, "slot_occupancy", "fraction of ticks holding an overload slot")
	add(h.Sweeps, "qp_sweeps", "QP solver sweeps per control period")
}

// Publish refreshes the bound gauges from the current windows.
func (h *RackHealth) Publish() {
	if h == nil {
		return
	}
	for _, b := range h.gauges {
		if b.q < 0 {
			b.g.Set(b.w.Mean())
		} else {
			b.g.Set(b.w.Quantile(b.q))
		}
	}
}

// HealthSnapshot is the JSON health document for one rack, served by the
// enriched status endpoint.
type HealthSnapshot struct {
	Rack          int         `json:"rack"`
	Degraded      bool        `json:"degraded"`
	LeaseAgeS     telemetry.F `json:"lease_age_s"`
	TripMarginP50 telemetry.F `json:"trip_margin_p50"`
	TripMarginP99 telemetry.F `json:"trip_margin_p99"`
	SoCP50        telemetry.F `json:"soc_p50"`
	OccupancyMean telemetry.F `json:"slot_occupancy_mean"`
	SweepsP95     telemetry.F `json:"qp_sweeps_p95"`
	Alerts        int         `json:"alerts"`
	OpenSpans     int         `json:"open_spans"`
}

// snapshot assembles the health document fields owned by the rollups.
func (h *RackHealth) snapshot(rack int) HealthSnapshot {
	return HealthSnapshot{
		Rack:          rack,
		LeaseAgeS:     telemetry.F(h.LeaseAge.Last()),
		TripMarginP50: telemetry.F(h.TripMargin.Quantile(0.50)),
		TripMarginP99: telemetry.F(h.TripMargin.Quantile(0.99)),
		SoCP50:        telemetry.F(h.SoC.Quantile(0.50)),
		OccupancyMean: telemetry.F(h.Occupancy.Mean()),
		SweepsP95:     telemetry.F(h.Sweeps.Quantile(0.95)),
	}
}
