package obs

import (
	"math"
	"testing"

	"sprintcon/internal/telemetry"
)

// TestTracerIDs pins the deterministic span-ID scheme: per-source namespaces
// (coordinator = CoordinatorSource, rack i = i+1) with a sequence counter,
// so merged cluster traces never collide and re-runs reproduce identical
// IDs.
func TestTracerIDs(t *testing.T) {
	coord := NewTracer(CoordinatorSource)
	r0 := NewTracer(0)
	r1 := NewTracer(1)

	a := coord.Event("lease-grant", 0, 0, 0, 1, 0, "")
	b := r0.Event("lease-accept", 0, 1, a, 1, 0, "")
	c := r1.Event("lease-accept", 1, 1, a, 1, 0, "")
	if a != 1 {
		t.Fatalf("coordinator first ID = %d, want 1 (namespace 0)", a)
	}
	if b != 1<<40|1 {
		t.Fatalf("rack 0 first ID = %#x, want %#x", b, uint64(1)<<40|1)
	}
	if c != 2<<40|1 {
		t.Fatalf("rack 1 first ID = %#x, want %#x", c, uint64(2)<<40|1)
	}

	// Same construction, same IDs: the scheme is a pure function of the
	// (source, sequence) pair.
	again := NewTracer(CoordinatorSource)
	if id := again.Event("lease-grant", 0, 0, 0, 1, 0, ""); id != a {
		t.Fatalf("re-run coordinator ID = %d, want %d", id, a)
	}
}

func TestTracerBeginEnd(t *testing.T) {
	tr := NewTracer(0)
	id := tr.Begin("degraded", 0, 10, 0, 3)
	spans := tr.Spans()
	if len(spans) != 1 || !spans[0].Open() {
		t.Fatalf("expected one open span, got %+v", spans)
	}
	tr.End(id, 25)
	spans = tr.Spans()
	if spans[0].Open() || spans[0].EndS != 25 {
		t.Fatalf("End did not close the span: %+v", spans[0])
	}
	// Ending again must not reopen or rewrite.
	tr.End(id, 99)
	if got := tr.Spans()[0].EndS; got != 25 {
		t.Fatalf("closed span rewritten: EndS = %v, want 25", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Begin("x", 0, 0, 0, 0); id != 0 {
		t.Fatalf("nil Begin = %d, want 0", id)
	}
	if id := tr.Event("x", 0, 0, 0, 0, 0, ""); id != 0 {
		t.Fatalf("nil Event = %d, want 0", id)
	}
	tr.End(1, 0)
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer must report no spans")
	}
}

// TestMergeSpans pins the merge's total order: (StartS, ID), which is
// deterministic whatever goroutine interleaving produced the per-source
// traces.
func TestMergeSpans(t *testing.T) {
	a := []telemetry.Span{
		{Schema: telemetry.SpanSchemaVersion, ID: 5, StartS: 2},
		{Schema: telemetry.SpanSchemaVersion, ID: 6, StartS: 0},
	}
	b := []telemetry.Span{
		{Schema: telemetry.SpanSchemaVersion, ID: 1<<40 | 1, StartS: 2},
		{Schema: telemetry.SpanSchemaVersion, ID: 1<<40 | 2, StartS: 1},
	}
	got := MergeSpans(a, b)
	wantOrder := []uint64{6, 1<<40 | 2, 5, 1<<40 | 1}
	for i, s := range got {
		if s.ID != wantOrder[i] {
			t.Fatalf("merge order[%d] = %d, want %d", i, s.ID, wantOrder[i])
		}
	}
	if math.IsNaN(got[0].StartS) {
		t.Fatal("merge corrupted spans")
	}
}
