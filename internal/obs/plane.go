// Package obs is the causal observability plane: deterministic lease and
// control-period spans, streaming per-rack health rollups, and anomaly
// detectors that turn raw control-plane signals into structured alerts.
//
// The plane answers the operational questions the lease link (DESIGN.md
// §12) created: "why is this rack degraded?" is a walk up the span tree
// from the rack's open degraded span to the grant whose loss caused it;
// "is this rack healthy?" is a windowed rollup query; "did anything go
// wrong?" is the alert list. Everything is a function of simulation time
// and deterministic counters — no wall clock, no randomness — so traces
// from two identical seeded runs are byte-identical and diffable, exactly
// like decision traces.
//
// Cost contract (matching package telemetry): a nil *Plane is a valid
// disabled plane whose methods no-op after one nil check, so the tick path
// of an unobserved run is untouched — zero allocations, no locks.
package obs

import (
	"fmt"
	"sync"

	"sprintcon/internal/telemetry"
)

// TickSignals is the per-tick controller/plant observation a rack's policy
// feeds its plane. All fields are the controller's *observed* values (the
// ones fault injection filters), so the detectors see what the controller
// saw — a lying sensor is caught by its inconsistency with physics, not by
// peeking at ground truth.
type TickSignals struct {
	// TripMargin is 1 − breaker thermal fraction.
	TripMargin float64
	// SoC is the observed UPS state of charge.
	SoC float64
	// UPSDeliveredW is the UPS discharge delivered last tick.
	UPSDeliveredW float64
	// UPSCapacityWh is the battery capacity (for gauge-consistency checks).
	UPSCapacityWh float64
	// Overloading reports whether the effective CB budget exceeds rated.
	Overloading bool
	// Confidence is the measurement guard's confidence (1 when the policy
	// runs unhardened).
	Confidence float64
	// SensorGapW is |guarded power reading − design-model estimate|: a
	// sustained gap flags telemetry the guard cannot reject (e.g. delayed
	// readings, which pass freeze and slew checks but lag the plant).
	SensorGapW float64
	// LockedCores counts cores excluded from actuation (stuck or offline).
	LockedCores int
	// ActErrGHz is the worst per-core |commanded − applied| frequency gap
	// at the last control period.
	ActErrGHz float64
	// UPSFailed is the UPS delivery watchdog's sticky verdict.
	UPSFailed bool
	// Urgency is the deadline urgency (max required/peak frequency).
	Urgency float64
}

// Plane is one source's observability state: a tracer, a rollup set and
// the detector latches. Racks each own a plane; the cluster coordinator
// owns one with rack index CoordinatorSource.
type Plane struct {
	rack int
	cfg  DetectorConfig

	mu       sync.Mutex
	tr       *Tracer
	health   *RackHealth
	det      detectState
	silent   []latch // coordinator plane only: per-rack silence latches
	alerts   []Alert
	cause    uint64 // current lease anchor span (accept/bootstrap)
	degSpan  uint64 // open degraded span, 0 when coordinated
	degraded bool
}

// NewPlane returns an enabled plane for the given rack (CoordinatorSource
// for the coordinator).
func NewPlane(rack int, cfg DetectorConfig) *Plane {
	if cfg.TickS <= 0 {
		cfg = DefaultDetectorConfig()
	}
	return &Plane{rack: rack, cfg: cfg, tr: NewTracer(rack), health: NewRackHealth()}
}

// Tracer returns the plane's span tracer (nil on a nil plane).
func (p *Plane) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.tr
}

// Rack returns the plane's rack index.
func (p *Plane) Rack() int {
	if p == nil {
		return 0
	}
	return p.rack
}

// Bind registers the plane's rollup gauges on reg under prefix.
func (p *Plane) Bind(reg *telemetry.Registry, prefix string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.health.Bind(reg, prefix)
}

// alert appends one alert under the held mutex.
func (p *Plane) alert(detector string, rack int, now float64, span uint64, detail string) {
	p.alerts = append(p.alerts, Alert{Detector: detector, Rack: rack, AtS: now, SpanID: span, Detail: detail})
}

// ObserveTick ingests one tick's controller signals: rollup pushes and the
// per-tick anomaly detectors. Allocation-free except when an alert fires.
func (p *Plane) ObserveTick(now float64, sig TickSignals) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	p.health.TripMargin.Push(sig.TripMargin)
	p.health.SoC.Push(sig.SoC)
	occ := 0.0
	if sig.Overloading {
		occ = 1
	}
	p.health.Occupancy.Push(occ)

	cfg := &p.cfg
	if p.det.sensor.update(sig.Confidence < cfg.ConfidenceFloor || sig.SensorGapW > cfg.SensorGapW, cfg.SustainTicks) {
		p.alert(DetectorSensor, p.rack, now, p.cause,
			fmt.Sprintf("guard confidence %.2f (floor %.2f), model gap %.0f W (ceil %.0f W)",
				sig.Confidence, cfg.ConfidenceFloor, sig.SensorGapW, cfg.SensorGapW))
	}
	if p.det.actuator.update(sig.LockedCores > 0 || sig.ActErrGHz > cfg.ActErrGHz, cfg.SustainTicks) {
		p.alert(DetectorActuator, p.rack, now, p.cause,
			fmt.Sprintf("%d locked cores, worst tracking error %.3f GHz", sig.LockedCores, sig.ActErrGHz))
	}

	// UPS gauge consistency: while discharging, the observed SoC cannot
	// sit above the previous reading minus the energy delivered (losses
	// only drain it faster). Accumulated violation means the gauge lies
	// high — the failure mode that silently discharges the battery flat.
	if p.det.haveSoC && sig.UPSDeliveredW > 0 && sig.UPSCapacityWh > 0 {
		possible := p.det.prevSoC - sig.UPSDeliveredW*cfg.TickS/3600/sig.UPSCapacityWh
		if excess := sig.SoC - possible; excess > 0 {
			p.det.upsDrift += excess
		}
	}
	p.det.prevSoC, p.det.haveSoC = sig.SoC, true
	if p.det.ups.update(sig.UPSFailed || p.det.upsDrift > cfg.UPSGaugeDriftSoC, cfg.SustainTicks) {
		p.alert(DetectorUPS, p.rack, now, p.cause,
			fmt.Sprintf("watchdog=%v gauge drift %.4f SoC", sig.UPSFailed, p.det.upsDrift))
	}

	if p.det.tripBurn.update(sig.TripMargin < cfg.TripBurnFloor && p.health.TripMargin.Slope() < 0, cfg.SustainTicks) {
		p.alert(DetectorTripBurn, p.rack, now, p.cause,
			fmt.Sprintf("margin %.3f below %.3f and still burning", sig.TripMargin, cfg.TripBurnFloor))
	}
	if p.det.socDepl.update(sig.SoC < 0.95 && slopeProjectsBelow(p.health.SoC, cfg.TickS, cfg.SoCHorizonS, cfg.SoCFloor), cfg.SustainTicks) {
		p.alert(DetectorSoCDepletion, p.rack, now, p.cause,
			fmt.Sprintf("SoC %.3f projects below %.2f within %.0f s", sig.SoC, cfg.SoCFloor, cfg.SoCHorizonS))
	}
	if p.det.deadline.update(sig.Urgency > cfg.UrgencyCeil, cfg.SustainTicks) {
		p.alert(DetectorDeadlineSlip, p.rack, now, p.cause,
			fmt.Sprintf("deadline urgency %.3f above %.2f", sig.Urgency, cfg.UrgencyCeil))
	}
}

// ObserveControl records one control period: a span causally linked to the
// budget's lease, the solver-effort rollup, and a gauge refresh.
func (p *Plane) ObserveControl(now float64, sweeps int, mode string) {
	if p == nil {
		return
	}
	p.tr.Event("control-period", p.rack, now, p.currentCause(), 0, float64(sweeps), mode)
	p.mu.Lock()
	p.health.Sweeps.Push(float64(sweeps))
	p.health.Publish()
	p.mu.Unlock()
}

// ObserveLink ingests the rack's per-tick link view (lease age rollup).
func (p *Plane) ObserveLink(ageS float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.health.LeaseAge.Push(ageS)
	p.mu.Unlock()
}

// currentCause returns the live lease anchor span.
func (p *Plane) currentCause() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cause
}

// --- rack-side lease lifecycle hooks (called by link.Client) ---

// LeaseAccepted records a grant acceptance causally linked to the grant
// span that crossed the transport, and makes it the rack's lease anchor.
func (p *Plane) LeaseAccepted(now float64, grantSpan, version uint64) {
	if p == nil {
		return
	}
	id := p.tr.Event("lease-accept", p.rack, now, grantSpan, version, 0, "")
	p.mu.Lock()
	p.cause = id
	p.mu.Unlock()
}

// LeaseStale records a rejected stale or duplicate grant.
func (p *Plane) LeaseStale(now float64, grantSpan, version uint64) {
	if p == nil {
		return
	}
	p.tr.Event("lease-stale", p.rack, now, grantSpan, version, 0, "")
}

// LeaseExpired records entry into the degraded fallback: it opens a
// degraded span under the expired lease's anchor, raises the rack-degraded
// alert, and feeds the churn detector.
func (p *Plane) LeaseExpired(now float64, version uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	span := p.tr.Begin("degraded", p.rack, now, p.cause, version)
	p.degSpan = span
	p.degraded = true
	p.alert(DetectorRackDegraded, p.rack, now, span, fmt.Sprintf("lease v%d expired", version))
	p.det.flaps.push(now)
	if p.det.flap.update(p.det.flaps.countSince(now-p.cfg.FlapWindowS) >= p.cfg.FlapCount, 1) {
		p.alert(DetectorLeaseFlap, p.rack, now, span,
			fmt.Sprintf("%d degraded entries within %.0f s", p.cfg.FlapCount, p.cfg.FlapWindowS))
	}
	p.mu.Unlock()
}

// LeaseResynced closes the open degraded span: the rack recovered a live
// lease and left the fallback.
func (p *Plane) LeaseResynced(now float64, version uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	span := p.degSpan
	p.degSpan = 0
	p.degraded = false
	p.mu.Unlock()
	p.tr.Event("lease-resync", p.rack, now, span, version, 0, "")
	p.tr.End(span, now)
}

// LeaseFailSafe records a fail-safe lease drop (controller restarted
// without link state).
func (p *Plane) LeaseFailSafe(now float64) {
	if p == nil {
		return
	}
	p.tr.Event("fail-safe", p.rack, now, p.currentCause(), 0, 0, "")
}

// HeartbeatSent records one heartbeat under the live lease anchor.
func (p *Plane) HeartbeatSent(now float64, version uint64) {
	if p == nil {
		return
	}
	p.tr.Event("heartbeat", p.rack, now, p.currentCause(), version, 0, "")
}

// --- coordinator-side hooks (called by link.Coordinator) ---

// GrantSpan records a lease put on the wire and returns the span ID the
// lease carries across the transport. Probes (grants without overload
// permission toward unreachable racks) carry their backoff as Attr.
func (p *Plane) GrantSpan(now float64, rack int, version uint64, probe bool, repack bool, backoffS float64) uint64 {
	if p == nil {
		return 0
	}
	kind, detail, attr := "lease-grant", "", 0.0
	if probe {
		kind, attr = "lease-probe", backoffS
	}
	if repack {
		detail = "repack"
	}
	return p.tr.Event(kind, rack, now, 0, version, attr, detail)
}

// PresumedDegraded records the coordinator writing a rack off, causally
// linked to the last grant it sent that rack.
func (p *Plane) PresumedDegraded(now float64, rack int, lastGrantSpan uint64) {
	if p == nil {
		return
	}
	p.tr.Event("presumed-degraded", rack, now, lastGrantSpan, 0, 0, "")
}

// CoordRestart records a coordinator crash-restart edge.
func (p *Plane) CoordRestart(now float64) {
	if p == nil {
		return
	}
	p.tr.Event("coord-restart", p.rack, now, 0, 0, 0, "")
}

// ObserveBeatAge runs the coordinator's silent-rack detector for one rack:
// ageS is the rack's heartbeat age (NaN when no beat was ever seen since
// restart — treated as silent once the threshold has passed since then).
func (p *Plane) ObserveBeatAge(now float64, rack int, ageS float64, lastGrantSpan uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.silent) <= rack {
		p.silent = append(p.silent, latch{})
	}
	if p.silent[rack].update(ageS > p.cfg.SilentAfterS, p.cfg.SustainTicks) {
		p.alert(DetectorRackSilent, rack, now, lastGrantSpan,
			fmt.Sprintf("no heartbeat for %.0f s", ageS))
	}
}

// --- output ---

// Alerts returns a copy of the alerts raised so far.
func (p *Plane) Alerts() []Alert {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Alert(nil), p.alerts...)
}

// Spans returns a copy of the plane's spans in emission order.
func (p *Plane) Spans() []telemetry.Span {
	return p.Tracer().Spans()
}

// Degraded reports whether the plane last saw the rack in the degraded
// fallback.
func (p *Plane) Degraded() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded
}

// Snapshot assembles the rack's live health document.
func (p *Plane) Snapshot() HealthSnapshot {
	if p == nil {
		return HealthSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.health.snapshot(p.rack)
	s.Degraded = p.degraded
	s.Alerts = len(p.alerts)
	if p.degSpan != 0 {
		s.OpenSpans = 1
	}
	return s
}
