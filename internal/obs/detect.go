package obs

import "math"

// Alert is one structured anomaly event. Alerts are deterministic for a
// seeded run: detectors evaluate on simulation time over deterministic
// signals, in a fixed order.
type Alert struct {
	// Detector names the rule that fired (see the Detector* constants).
	Detector string `json:"detector"`
	// Rack is the rack the alert concerns (-1 for coordinator-side alerts
	// about the cluster rather than one rack — currently unused).
	Rack int `json:"rack"`
	// AtS is the simulation time the episode was detected.
	AtS float64 `json:"at_s"`
	// SpanID is the causal anchor, when one exists (e.g. the degraded span
	// a rack-degraded alert belongs to).
	SpanID uint64 `json:"span,omitempty"`
	// Detail is a human-oriented annotation of the triggering condition.
	Detail string `json:"detail,omitempty"`
}

// Detector names. Each detector fires once per episode: the condition must
// clear before the same detector can fire again for the same rack.
const (
	// DetectorTripBurn fires when the breaker's trip margin is burning
	// toward exhaustion faster than the overload schedule accounts for.
	DetectorTripBurn = "trip-margin-burn"
	// DetectorSoCDepletion fires when the SoC trajectory projects below
	// the reserve floor within the horizon.
	DetectorSoCDepletion = "soc-depletion"
	// DetectorSensor fires when the measurement guard's confidence
	// collapses (frozen, dropped, biased or stale power telemetry).
	DetectorSensor = "sensor-anomaly"
	// DetectorActuator fires on locked cores, offline servers, or a
	// sustained gap between commanded and applied frequencies (lag).
	DetectorActuator = "actuator-anomaly"
	// DetectorUPS fires on the UPS delivery watchdog, or when the SoC
	// gauge reads a physically impossible discharge trajectory.
	DetectorUPS = "ups-anomaly"
	// DetectorDeadlineSlip fires when some batch job's required frequency
	// exceeds the peak — a miss is already unavoidable.
	DetectorDeadlineSlip = "deadline-slip"
	// DetectorLeaseFlap fires when lease expiries churn: several
	// degraded-mode entries within the flap window.
	DetectorLeaseFlap = "lease-flap"
	// DetectorRackDegraded fires when a rack enters the degraded
	// standalone fallback (lease expiry or fail-safe drop).
	DetectorRackDegraded = "rack-degraded"
	// DetectorRackSilent fires on the coordinator when a rack's heartbeat
	// age exceeds the silence threshold.
	DetectorRackSilent = "rack-silent"
)

// DetectorConfig holds the anomaly thresholds. The defaults are tuned so
// the fault-free default scenario fires nothing while every E18 fault class
// and E19 partition case fires its detector (see experiments.AlertCoverage
// and DESIGN.md §13 for the tuning rationale).
type DetectorConfig struct {
	// TickS is the sampling period the per-tick detectors run on.
	TickS float64

	// SustainTicks is how many consecutive ticks a per-tick condition must
	// hold before an episode opens — one-tick transients never alert.
	SustainTicks int

	// ConfidenceFloor is the measurement-guard confidence below which the
	// power telemetry is considered anomalous.
	ConfidenceFloor float64

	// SensorGapW is the |guarded reading − model estimate| gap that marks
	// telemetry the guard cannot reject outright — delayed readings pass
	// freeze and slew checks but trail the plant by the delay.
	SensorGapW float64

	// ActErrGHz is the worst per-core |commanded − applied| frequency gap
	// that marks an actuator anomaly even when no core is formally locked
	// (lag, or a stuck core whose command has moved away from it).
	ActErrGHz float64

	// UPSGaugeDriftSoC is the accumulated positive gap between observed
	// and physically possible SoC during discharge that marks a lying
	// gauge (observed depleting slower than the energy delivered allows).
	UPSGaugeDriftSoC float64

	// TripBurnFloor is the trip margin below which a still-burning breaker
	// alerts: the planned overload schedule never burns this deep.
	TripBurnFloor float64

	// SoCFloor and SoCHorizonS: alert when the windowed SoC trend projects
	// below SoCFloor within SoCHorizonS.
	SoCFloor    float64
	SoCHorizonS float64

	// UrgencyCeil is the deadline-urgency level that marks a slipping
	// deadline (1 = some job needs exactly peak frequency until deadline).
	UrgencyCeil float64

	// FlapCount expiries within FlapWindowS mark lease churn.
	FlapCount   int
	FlapWindowS float64

	// SilentAfterS is the heartbeat age at which the coordinator declares
	// a rack silent (defaults to the link's beat timeout).
	SilentAfterS float64
}

// DefaultDetectorConfig returns the tuned thresholds for the default
// scenario (1 s ticks, 4 s control periods).
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{
		TickS:            1,
		SustainTicks:     2,
		ConfidenceFloor:  0.7,
		SensorGapW:       600,
		ActErrGHz:        0.065,
		UPSGaugeDriftSoC: 0.001,
		TripBurnFloor:    0.03,
		SoCFloor:         0.05,
		SoCHorizonS:      120,
		UrgencyCeil:      1.02,
		FlapCount:        3,
		FlapWindowS:      90,
		SilentAfterS:     8,
	}
}

// latch is the per-detector episode state: the condition must hold for
// `sustain` consecutive evaluations to open an episode (returning true
// exactly once), and must clear before another episode can open.
type latch struct {
	count  int
	active bool
}

// update advances the latch one evaluation; it returns true exactly when a
// new episode opens.
func (l *latch) update(cond bool, sustain int) bool {
	if !cond {
		l.count = 0
		l.active = false
		return false
	}
	l.count++
	if l.active || l.count < sustain {
		return false
	}
	l.active = true
	return true
}

// flapRing remembers recent degraded-entry times for churn detection.
type flapRing struct {
	times [8]float64
	n     int
}

func (f *flapRing) push(t float64) {
	f.times[f.n%len(f.times)] = t
	f.n++
}

// countSince returns how many recorded entries fall in (since, +inf).
func (f *flapRing) countSince(since float64) int {
	m := f.n
	if m > len(f.times) {
		m = len(f.times)
	}
	var c int
	for i := 0; i < m; i++ {
		if f.times[i] > since {
			c++
		}
	}
	return c
}

// detectState is one rack's detector latches and accumulators.
type detectState struct {
	sensor   latch
	actuator latch
	ups      latch
	tripBurn latch
	socDepl  latch
	deadline latch
	flap     latch

	upsDrift float64 // accumulated impossible SoC (gauge reading high)
	prevSoC  float64
	haveSoC  bool

	flaps flapRing
}

// slopeProjectsBelow reports whether the window's trend, extrapolated
// horizonS ahead at the given sampling period, crosses below floor.
func slopeProjectsBelow(w *WindowStat, tickS, horizonS, floor float64) bool {
	slope := w.Slope()
	if math.IsNaN(slope) || slope >= 0 {
		return false
	}
	return w.Last()+slope/tickS*horizonS < floor
}
