package obs

import (
	"sort"

	"sprintcon/internal/telemetry"
)

// Cluster is the merged observability view of a linked run: one plane per
// rack plus the coordinator's. It owns nothing at tick time — the planes
// do the work — and merges deterministically on demand.
type Cluster struct {
	Coord *Plane
	Racks []*Plane
}

// NewCluster builds planes for numRacks racks and the coordinator, all
// sharing the detector configuration.
func NewCluster(numRacks int, cfg DetectorConfig) *Cluster {
	c := &Cluster{Coord: NewPlane(CoordinatorSource, cfg)}
	c.Racks = make([]*Plane, numRacks)
	for i := range c.Racks {
		c.Racks[i] = NewPlane(i, cfg)
	}
	return c
}

// Spans returns the cluster's merged span trace, ordered by (StartS, ID) —
// a total order, so the merge is independent of goroutine scheduling.
func (c *Cluster) Spans() []telemetry.Span {
	if c == nil {
		return nil
	}
	traces := make([][]telemetry.Span, 0, len(c.Racks)+1)
	traces = append(traces, c.Coord.Spans())
	for _, p := range c.Racks {
		traces = append(traces, p.Spans())
	}
	return MergeSpans(traces...)
}

// Alerts returns the cluster's merged alerts, ordered by (AtS, Rack,
// Detector).
func (c *Cluster) Alerts() []Alert {
	if c == nil {
		return nil
	}
	var out []Alert
	out = append(out, c.Coord.Alerts()...)
	for _, p := range c.Racks {
		out = append(out, p.Alerts()...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].AtS != out[b].AtS {
			return out[a].AtS < out[b].AtS
		}
		if out[a].Rack != out[b].Rack {
			return out[a].Rack < out[b].Rack
		}
		return out[a].Detector < out[b].Detector
	})
	return out
}

// HealthDoc is the enriched cluster status document: topology, per-rack
// health, and the live alert/span counts. Serve it with
// telemetry.Endpoint{Path: "/status/cluster", Doc: c.HealthDoc}.
type HealthDoc struct {
	NumRacks int              `json:"num_racks"`
	Racks    []HealthSnapshot `json:"racks"`
	Alerts   []Alert          `json:"alerts"`
	Spans    int              `json:"spans"`
}

// Doc assembles the live cluster health document (safe during a run).
func (c *Cluster) Doc() any {
	if c == nil {
		return HealthDoc{}
	}
	doc := HealthDoc{NumRacks: len(c.Racks)}
	for _, p := range c.Racks {
		doc.Racks = append(doc.Racks, p.Snapshot())
	}
	doc.Alerts = c.Alerts()
	doc.Spans = c.Coord.Tracer().Len()
	for _, p := range c.Racks {
		doc.Spans += p.Tracer().Len()
	}
	return doc
}
