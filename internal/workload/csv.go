package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// TraceFromCSV loads an interactive demand trace from CSV with columns
// time_s,demand_frac (the format cmd/tracegen emits, and the natural shape
// for replaying a production trace such as the paper's Wikipedia source).
// Timestamps must be ascending and evenly spaced; demand is clamped to
// [0, 1.2] like the generator's output.
func TraceFromCSV(r io.Reader) (*InteractiveTrace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: trace CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, errors.New("workload: empty trace CSV")
	}
	start := 0
	if _, err := strconv.ParseFloat(records[0][0], 64); err != nil {
		start = 1 // header row
	}
	rows := records[start:]
	if len(rows) < 2 {
		return nil, errors.New("workload: trace CSV needs at least two samples")
	}

	times := make([]float64, len(rows))
	demand := make([]float64, len(rows))
	for i, rec := range rows {
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad time %q", i+start+1, rec[0])
		}
		d, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d: bad demand %q", i+start+1, rec[1])
		}
		if d < 0 {
			d = 0
		}
		if d > 1.2 {
			d = 1.2
		}
		times[i] = t
		demand[i] = d
	}

	dt := times[1] - times[0]
	if dt <= 0 {
		return nil, errors.New("workload: trace timestamps must be ascending")
	}
	for i := 2; i < len(times); i++ {
		step := times[i] - times[i-1]
		if step <= 0 {
			return nil, fmt.Errorf("workload: timestamps not ascending at row %d", i+start+1)
		}
		if relErr := (step - dt) / dt; relErr > 0.01 || relErr < -0.01 {
			return nil, fmt.Errorf("workload: uneven step at row %d: %g vs %g", i+start+1, step, dt)
		}
	}
	return &InteractiveTrace{DtS: dt, Demand: demand}, nil
}
