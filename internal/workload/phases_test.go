package workload

import (
	"math"
	"testing"
)

func twoPhaseSpec() BatchSpec {
	return BatchSpec{
		Name: "2ph", MemBound: 0.3, Util: 0.9, PeakSeconds: 100,
		Phases: []Phase{
			{Frac: 0.5, MemBound: 0.0, Util: 1.0}, // pure compute
			{Frac: 0.5, MemBound: 0.6, Util: 0.8}, // memory bound
		},
	}
}

func TestPhaseValidation(t *testing.T) {
	s := twoPhaseSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoPhaseSpec()
	bad.Phases[0].Frac = 0.4 // fractions no longer sum to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("bad fraction sum should fail")
	}
	bad = twoPhaseSpec()
	bad.Phases[1].MemBound = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("MemBound 1 should fail")
	}
	bad = twoPhaseSpec()
	bad.Phases[0].Util = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero util should fail")
	}
}

func TestEffectiveMemBound(t *testing.T) {
	s := twoPhaseSpec()
	if got := s.EffectiveMemBound(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("effective β = %v, want 0.3", got)
	}
	plain := BatchSpec{Name: "p", MemBound: 0.2, Util: 0.9, PeakSeconds: 10}
	if plain.EffectiveMemBound() != 0.2 {
		t.Fatal("single-phase effective β should be MemBound")
	}
	// The catalog's phased specs preserve their aggregate β.
	for _, spec := range SpecCPU2006() {
		if math.Abs(spec.EffectiveMemBound()-spec.MemBound) > 0.001 {
			t.Fatalf("%s: phases average to β %v, aggregate says %v",
				spec.Name, spec.EffectiveMemBound(), spec.MemBound)
		}
	}
}

func TestPhasedAdvanceMatchesAnalyticTime(t *testing.T) {
	// At f = 1.0 (half of peak 2.0): phase 1 runs at rate 1/(0+1·2)=0.5,
	// phase 2 at 1/(0.6+0.4·2)=1/1.4. Completion time for 50+50 work:
	// 50/0.5 + 50·1.4 = 100 + 70 = 170 s.
	s := twoPhaseSpec()
	j, err := NewBatchJob(s, 0, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	predicted := j.RemainingSeconds(1.0, 2.0)
	if math.Abs(predicted-170) > 1e-9 {
		t.Fatalf("RemainingSeconds = %v, want 170", predicted)
	}
	var now float64
	for !j.Completed() {
		j.Advance(1.0, 2.0, 1, now)
		now++
		if now > 400 {
			t.Fatal("never completed")
		}
	}
	if math.Abs(j.CompletionTime()-170) > 1 {
		t.Fatalf("completed at %v, want ≈170", j.CompletionTime())
	}
}

func TestCurrentUtilTracksPhase(t *testing.T) {
	s := twoPhaseSpec()
	j, _ := NewBatchJob(s, 0, 1e9)
	if got := j.CurrentUtil(); got != 1.0 {
		t.Fatalf("phase-1 util = %v, want 1.0", got)
	}
	j.Advance(2.0, 2.0, 60, 0) // 60 peak-seconds: past the 50-work boundary
	if got := j.CurrentUtil(); got != 0.8 {
		t.Fatalf("phase-2 util = %v, want 0.8", got)
	}
}

func TestRequiredFreqPhased(t *testing.T) {
	s := twoPhaseSpec()
	j, _ := NewBatchJob(s, 0, 170) // exactly the time needed at f=1.0
	f := j.RequiredFreq(0, 2.0)
	if math.Abs(f-1.0) > 1e-9 {
		t.Fatalf("RequiredFreq = %v, want 1.0", f)
	}
	// Verify the claim: running at that frequency completes at the deadline.
	if got := j.RemainingSeconds(f, 2.0); math.Abs(got-170) > 1e-9 {
		t.Fatalf("RemainingSeconds at required freq = %v", got)
	}
	// Impossible deadlines clamp at fmax.
	j2, _ := NewBatchJob(s, 0, 10)
	if got := j2.RequiredFreq(0, 2.0); got != 2.0 {
		t.Fatalf("impossible deadline RequiredFreq = %v, want fmax", got)
	}
	// Completed jobs need nothing.
	j3, _ := NewBatchJob(s, 0, 1e9)
	j3.Advance(2.0, 2.0, 1000, 0)
	if j3.RequiredFreq(0, 2.0) != 0 {
		t.Fatal("completed job should require 0")
	}
	// A past deadline with work remaining demands fmax.
	j4, _ := NewBatchJob(s, 0, 50)
	if got := j4.RequiredFreq(60, 2.0); got != 2.0 {
		t.Fatalf("past-deadline RequiredFreq = %v", got)
	}
}

func TestRequiredFreqMatchesFreqForRateSinglePhase(t *testing.T) {
	// For single-phase specs the two formulations must agree.
	s := BatchSpec{Name: "x", MemBound: 0.3, Util: 0.9, PeakSeconds: 100}
	j, _ := NewBatchJob(s, 0, 200)
	viaRate := s.FreqForRate(j.RequiredRate(0), 2.0)
	direct := j.RequiredFreq(0, 2.0)
	if math.Abs(viaRate-direct) > 1e-9 {
		t.Fatalf("FreqForRate path %v vs RequiredFreq %v", viaRate, direct)
	}
}

func TestPhasedCompletionAcrossSteps(t *testing.T) {
	// Multiple completions within one large step must respect phases.
	s := twoPhaseSpec()
	s.PeakSeconds = 10
	j, _ := NewBatchJob(s, 0, 1e9)
	// One execution at peak: 5/1 + 5/(1/(0.6+0.4)) = 5 + 5 = 10 s.
	j.Advance(2.0, 2.0, 25, 0)
	if j.Completions() != 2 {
		t.Fatalf("completions = %d, want 2 in 25 s", j.Completions())
	}
	if math.Abs(j.Progress()-0.5) > 1e-6 {
		t.Fatalf("progress = %v, want 0.5", j.Progress())
	}
	if math.Abs(j.CompletionTime()-10) > 1e-6 {
		t.Fatalf("first completion at %v, want 10", j.CompletionTime())
	}
}
