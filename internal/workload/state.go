package workload

import (
	"fmt"
	"math"
)

// JobState is the serializable snapshot of one batch job's execution state.
// The spec itself is not serialized: the scenario rebuilds it, and a
// fingerprint check upstream guarantees the rebuilt spec matches the one
// the snapshot was taken under.
type JobState struct {
	StartTime float64
	Deadline  float64
	TotalWork float64
	Remaining float64
	DoneAt    float64 // NaN until first completion
	Completed int
	ExecSecs  float64
}

// ExportState captures the job's mutable state.
func (j *BatchJob) ExportState() JobState {
	return JobState{
		StartTime: j.startTime,
		Deadline:  j.Deadline,
		TotalWork: j.totalWork,
		Remaining: j.remaining,
		DoneAt:    j.doneAt,
		Completed: j.completed,
		ExecSecs:  j.execSecs,
	}
}

// RestoreState overwrites the job's mutable state from a snapshot. Work
// accounting must stay self-consistent — a corrupt snapshot must not grant
// negative remaining work (instant completions) or a deadline before the
// start time.
func (j *BatchJob) RestoreState(st JobState) error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"StartTime", st.StartTime},
		{"Deadline", st.Deadline},
		{"TotalWork", st.TotalWork},
		{"Remaining", st.Remaining},
		{"ExecSecs", st.ExecSecs},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("workload: %s: snapshot %s is %g; must be finite", j.Spec.Name, f.name, f.v)
		}
	}
	switch {
	case st.TotalWork <= 0:
		return fmt.Errorf("workload: %s: snapshot total work %g must be positive", j.Spec.Name, st.TotalWork)
	case st.Remaining < 0 || st.Remaining > st.TotalWork:
		return fmt.Errorf("workload: %s: snapshot remaining work %g outside [0, %g]", j.Spec.Name, st.Remaining, st.TotalWork)
	case st.Deadline <= st.StartTime:
		return fmt.Errorf("workload: %s: snapshot deadline %g not after start %g", j.Spec.Name, st.Deadline, st.StartTime)
	case st.Completed < 0:
		return fmt.Errorf("workload: %s: snapshot completion count %d is negative", j.Spec.Name, st.Completed)
	case st.ExecSecs < 0:
		return fmt.Errorf("workload: %s: snapshot execution time %g is negative", j.Spec.Name, st.ExecSecs)
	case math.IsInf(st.DoneAt, 0):
		return fmt.Errorf("workload: %s: snapshot completion time is infinite", j.Spec.Name)
	}
	j.startTime = st.StartTime
	j.Deadline = st.Deadline
	j.totalWork = st.TotalWork
	j.remaining = st.Remaining
	j.doneAt = st.DoneAt
	j.completed = st.Completed
	j.execSecs = st.ExecSecs
	return nil
}
