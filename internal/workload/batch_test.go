package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBatchSpecValidate(t *testing.T) {
	good := BatchSpec{Name: "x", MemBound: 0.2, Util: 0.9, PeakSeconds: 100}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]BatchSpec{
		"no name":       {MemBound: 0.2, Util: 0.9, PeakSeconds: 100},
		"membound 1":    {Name: "x", MemBound: 1, Util: 0.9, PeakSeconds: 100},
		"zero util":     {Name: "x", MemBound: 0.2, Util: 0, PeakSeconds: 100},
		"zero duration": {Name: "x", MemBound: 0.2, Util: 0.9},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSpecCPU2006Catalog(t *testing.T) {
	specs := SpecCPU2006()
	if len(specs) != 8 {
		t.Fatalf("want 8 benchmarks, got %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
	}
	// The paper's set: CINT 400/401/403/429 + CFP 433/444/447/450.
	for _, want := range []string{"400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "433.milc", "444.namd", "447.dealII", "450.soplex"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
	if len(Fig1Workloads()) != 6 {
		t.Fatal("Fig. 1 uses six workloads")
	}
}

func TestRateProperties(t *testing.T) {
	s := BatchSpec{Name: "x", MemBound: 0.3, Util: 0.9, PeakSeconds: 100}
	if got := s.Rate(2.0, 2.0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Rate at peak = %v, want 1", got)
	}
	if s.Rate(0, 2.0) != 0 {
		t.Fatal("Rate at f=0 must be 0")
	}
	if s.Rate(3.0, 2.0) != 1 {
		t.Fatal("Rate above peak clamps to 1")
	}
	// Monotone increasing in f.
	prev := 0.0
	for f := 0.4; f <= 2.0; f += 0.1 {
		r := s.Rate(f, 2.0)
		if r <= prev {
			t.Fatalf("Rate not increasing at f=%v", f)
		}
		prev = r
	}
}

func TestMemoryBoundWorkloadsLessFrequencySensitive(t *testing.T) {
	// Fig. 1's premise: compute-bound workloads speed up more with
	// frequency than memory-bound ones.
	namd := BatchSpec{Name: "444.namd", MemBound: 0.07, Util: 1, PeakSeconds: 1}
	mcf := BatchSpec{Name: "429.mcf", MemBound: 0.58, Util: 1, PeakSeconds: 1}
	suNamd := namd.Speedup(2.0, 0.4, 2.0)
	suMcf := mcf.Speedup(2.0, 0.4, 2.0)
	if suNamd <= suMcf {
		t.Fatalf("compute-bound speedup %v should exceed memory-bound %v", suNamd, suMcf)
	}
	if suNamd < 3 { // nearly frequency-proportional: 2.0/0.4 = 5×
		t.Fatalf("namd speedup %v implausibly low", suNamd)
	}
	if suMcf > 3.0 { // far below the 5× frequency ratio
		t.Fatalf("mcf speedup %v implausibly high", suMcf)
	}
}

func TestFreqForRateInvertsRate(t *testing.T) {
	s := BatchSpec{Name: "x", MemBound: 0.3, Util: 0.9, PeakSeconds: 100}
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		f := s.FreqForRate(r, 2.0)
		if got := s.Rate(f, 2.0); math.Abs(got-r) > 1e-9 {
			t.Fatalf("Rate(FreqForRate(%v)) = %v", r, got)
		}
	}
	if s.FreqForRate(0, 2.0) != 0 {
		t.Fatal("zero rate needs zero frequency")
	}
	if s.FreqForRate(1, 2.0) != 2.0 || s.FreqForRate(5, 2.0) != 2.0 {
		t.Fatal("rates ≥ 1 clamp to peak")
	}
}

func TestBatchJobLifecycle(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 100}
	j, err := NewBatchJob(spec, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// At peak frequency, 100 peak-seconds take 100 s.
	j.Advance(2.0, 2.0, 60, 0)
	if got := j.Progress(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("progress = %v, want 0.6", got)
	}
	if j.Completed() {
		t.Fatal("not yet complete")
	}
	j.Advance(2.0, 2.0, 60, 60)
	if !j.Completed() {
		t.Fatal("should be complete")
	}
	if got := j.CompletionTime(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("completion time = %v, want 100", got)
	}
	if j.Completions() != 1 {
		t.Fatalf("completions = %d", j.Completions())
	}
	// Re-execution restarted: 20 s of the new run done.
	if got := j.Progress(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("restarted progress = %v, want 0.2", got)
	}
	if j.MissedDeadline(120) {
		t.Fatal("deadline 1000 not missed at t=120")
	}
}

func TestBatchJobHalfFrequencyTakesLonger(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0.5, Util: 1, PeakSeconds: 100}
	j, _ := NewBatchJob(spec, 0, 10000)
	// At f = 1.0 (half of 2.0): rate = 1/(0.5 + 0.5·2) = 1/1.5.
	j.Advance(1.0, 2.0, 150, 0)
	if !j.Completed() {
		t.Fatalf("rate %v · 150 s should exactly finish 100 peak-seconds", spec.Rate(1.0, 2.0))
	}
	if math.Abs(j.CompletionTime()-150) > 1e-6 {
		t.Fatalf("completion at %v, want 150", j.CompletionTime())
	}
}

func TestBatchJobMultipleCompletionsInOneStep(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 10}
	j, _ := NewBatchJob(spec, 0, 1000)
	j.Advance(2.0, 2.0, 35, 0) // 3.5 executions
	if j.Completions() != 3 {
		t.Fatalf("completions = %d, want 3", j.Completions())
	}
	if math.Abs(j.Progress()-0.5) > 1e-9 {
		t.Fatalf("progress = %v, want 0.5", j.Progress())
	}
	if math.Abs(j.CompletionTime()-10) > 1e-6 {
		t.Fatalf("first completion at %v, want 10", j.CompletionTime())
	}
}

func TestWorkDone(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 10}
	j, _ := NewBatchJob(spec, 0, 1000)
	j.Advance(2.0, 2.0, 35, 0) // 3.5 executions
	if got := j.WorkDone(); math.Abs(got-35) > 1e-9 {
		t.Fatalf("WorkDone = %v, want 35 peak-seconds", got)
	}
	// Work done is invariant to re-execution bookkeeping: advance again.
	j.Advance(2.0, 2.0, 5, 35)
	if got := j.WorkDone(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("WorkDone = %v, want 40", got)
	}
}

func TestMissedDeadline(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 100}
	j, _ := NewBatchJob(spec, 0, 50)
	j.Advance(2.0, 2.0, 100, 0) // completes at t=100 > deadline 50
	if !j.MissedDeadline(100) {
		t.Fatal("completion after deadline should count as missed")
	}
	j2, _ := NewBatchJob(spec, 0, 50)
	if !j2.MissedDeadline(60) {
		t.Fatal("incomplete past deadline should count as missed")
	}
	if j2.MissedDeadline(40) {
		t.Fatal("still before deadline")
	}
}

func TestRemainingSecondsAndRequiredRate(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 100}
	j, _ := NewBatchJob(spec, 0, 200)
	if got := j.RemainingSeconds(2.0, 2.0); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RemainingSeconds at peak = %v", got)
	}
	if got := j.RemainingSeconds(1.0, 2.0); math.Abs(got-200) > 1e-9 {
		t.Fatalf("RemainingSeconds at half (compute-bound) = %v, want 200", got)
	}
	if !math.IsInf(j.RemainingSeconds(0, 2.0), 1) {
		t.Fatal("RemainingSeconds at f=0 must be +Inf")
	}
	if got := j.RequiredRate(100); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("RequiredRate = %v, want 1.0 (100 work / 100 s)", got)
	}
	if got := j.RequiredRate(250); !math.IsInf(got, 1) {
		t.Fatalf("RequiredRate past deadline = %v, want +Inf", got)
	}
}

func TestRWeightPaperExample(t *testing.T) {
	// Paper Section V-B: 80 % executed, 6 minutes used, 4 minutes left
	// before the deadline → R = (1 − 0.8)/(4/(6+4)) = 0.5.
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 600}
	j, _ := NewBatchJob(spec, 0, 600) // 10-minute deadline from t=0
	j.Advance(2.0, 2.0, 360, 0)       // 6 minutes at peak → but that is 60 % progress
	// Force the paper's exact state: 80 % progress at t = 360.
	j.remaining = 0.2 * j.totalWork
	if got := j.RWeight(360); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("RWeight = %v, want 0.5 (paper example)", got)
	}
}

func TestRWeightUrgencyOrdering(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 600}
	ahead, _ := NewBatchJob(spec, 0, 600)
	behind, _ := NewBatchJob(spec, 0, 600)
	ahead.remaining = 0.1 * ahead.totalWork   // 90 % done
	behind.remaining = 0.9 * behind.totalWork // 10 % done
	if ahead.RWeight(300) >= behind.RWeight(300) {
		t.Fatal("the job that is behind must get the larger R weight")
	}
	// Past deadline → maximal urgency.
	if got := behind.RWeight(700); got != 100 {
		t.Fatalf("past-deadline weight = %v, want 100", got)
	}
	// Completed jobs have minimal urgency.
	done, _ := NewBatchJob(spec, 0, 600)
	done.Advance(2.0, 2.0, 600, 0)
	if got := done.RWeight(300); got != 0.1 {
		t.Fatalf("completed-job weight = %v, want 0.1", got)
	}
}

func TestScaleWork(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 100}
	j, _ := NewBatchJob(spec, 0, 1000)
	j.ScaleWork(2)
	j.Advance(2.0, 2.0, 100, 0)
	if j.Completed() {
		t.Fatal("doubled work should not be complete after 100 s at peak")
	}
	if math.Abs(j.Progress()-0.5) > 1e-9 {
		t.Fatalf("progress = %v, want 0.5", j.Progress())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ScaleWork after execution should panic")
		}
	}()
	j.ScaleWork(2)
}

func TestNewBatchJobValidation(t *testing.T) {
	spec := BatchSpec{Name: "x", MemBound: 0, Util: 1, PeakSeconds: 100}
	if _, err := NewBatchJob(spec, 10, 10); err == nil {
		t.Fatal("deadline == start should fail")
	}
	if _, err := NewBatchJob(BatchSpec{}, 0, 10); err == nil {
		t.Fatal("invalid spec should fail")
	}
}

// Property: executing a job to completion at any constant frequency takes
// exactly remaining/rate seconds (work accounting is exact).
func TestBatchCompletionTimeProperty(t *testing.T) {
	f := func(rawF, rawBeta float64) bool {
		fGHz := 0.4 + math.Mod(math.Abs(rawF), 1.6)
		beta := math.Mod(math.Abs(rawBeta), 0.9)
		spec := BatchSpec{Name: "p", MemBound: beta, Util: 1, PeakSeconds: 50}
		j, err := NewBatchJob(spec, 0, 1e9)
		if err != nil {
			return false
		}
		predicted := j.RemainingSeconds(fGHz, 2.0)
		var now float64
		dt := 0.5
		for !j.Completed() {
			j.Advance(fGHz, 2.0, dt, now)
			now += dt
			if now > 10*predicted+10 {
				return false
			}
		}
		return math.Abs(j.CompletionTime()-predicted) <= dt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
