package workload

import (
	"errors"
	"math"
	"math/rand"
)

// InteractiveConfig parameterizes the Wikipedia-like interactive load
// generator. Load is expressed as a demand fraction of the rack's
// interactive serving capacity at peak frequency: per-core utilization of
// the interactive cores equals the demand (clamped to 1) plus small
// per-server jitter.
type InteractiveConfig struct {
	// Seed makes the trace deterministic.
	Seed int64
	// Base is the pre-burst demand level (fraction of capacity).
	Base float64
	// DiurnalAmp and DiurnalPeriodS add the slow daily swing visible in
	// the Wikipedia trace (a 15-minute window sees a slice of it).
	DiurnalAmp     float64
	DiurnalPeriodS float64
	// BurstStartS/BurstEndS bound the flash-crowd window; BurstPeak is
	// the demand it ramps to. RampS is the ramp duration on each side.
	BurstStartS float64
	BurstEndS   float64
	BurstPeak   float64
	RampS       float64
	// NoiseStd is the standard deviation of the AR(1) noise; NoiseCorr
	// its one-step correlation (0 ≤ ρ < 1).
	NoiseStd  float64
	NoiseCorr float64
	// SpikeProb is the per-step probability of a short spike of extra
	// demand SpikeMag (request bursts in the trace).
	SpikeProb float64
	SpikeMag  float64
}

// DefaultInteractiveConfig returns a 15-minute flash-crowd scenario: demand
// ramps from ~42 % to ~68 % of interactive capacity, with spikes toward 90 %
// and persistent fluctuation, which is what makes the UPS controller's job
// nontrivial (paper Section IV-B: rack interactive load "can fluctuate
// dramatically and frequently").
func DefaultInteractiveConfig() InteractiveConfig {
	return InteractiveConfig{
		Seed:           1,
		Base:           0.42,
		DiurnalAmp:     0.04,
		DiurnalPeriodS: 3 * 3600,
		BurstStartS:    0,
		BurstEndS:      900,
		BurstPeak:      0.68,
		RampS:          60,
		NoiseStd:       0.06,
		NoiseCorr:      0.9,
		SpikeProb:      0.02,
		SpikeMag:       0.35,
	}
}

// Validate reports structural errors in the configuration.
func (c InteractiveConfig) Validate() error {
	switch {
	case c.Base < 0 || c.Base > 1:
		return errors.New("workload: Base must be in [0, 1]")
	case c.BurstPeak < 0 || c.BurstPeak > 1.5:
		return errors.New("workload: BurstPeak must be in [0, 1.5]")
	case c.BurstEndS < c.BurstStartS:
		return errors.New("workload: burst must end after it starts")
	case c.NoiseStd < 0 || c.NoiseCorr < 0 || c.NoiseCorr >= 1:
		return errors.New("workload: need NoiseStd ≥ 0 and 0 ≤ NoiseCorr < 1")
	case c.SpikeProb < 0 || c.SpikeProb > 1:
		return errors.New("workload: SpikeProb must be a probability")
	case c.RampS < 0 || c.DiurnalAmp < 0 || c.DiurnalPeriodS < 0 || c.SpikeMag < 0:
		return errors.New("workload: negative shape parameter")
	}
	return nil
}

// InteractiveTrace is a precomputed demand series with fixed time step.
type InteractiveTrace struct {
	DtS    float64
	Demand []float64 // demand fraction per step, in [0, 1.2]
}

// GenInteractive produces a deterministic demand trace of the given
// duration and step.
func GenInteractive(cfg InteractiveConfig, durationS, dtS float64) (*InteractiveTrace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if durationS <= 0 || dtS <= 0 {
		return nil, errors.New("workload: duration and dt must be positive")
	}
	n := int(math.Ceil(durationS / dtS))
	rng := rand.New(rand.NewSource(cfg.Seed))
	demand := make([]float64, n)
	noise := 0.0
	// Stationary-variance scaling keeps the marginal noise std at
	// NoiseStd regardless of the correlation.
	innov := cfg.NoiseStd * math.Sqrt(1-cfg.NoiseCorr*cfg.NoiseCorr)
	for i := 0; i < n; i++ {
		t := float64(i) * dtS
		d := cfg.Base
		if cfg.DiurnalAmp > 0 && cfg.DiurnalPeriodS > 0 {
			d += cfg.DiurnalAmp * math.Sin(2*math.Pi*t/cfg.DiurnalPeriodS)
		}
		d += cfg.burstShape(t) * (cfg.BurstPeak - cfg.Base)
		noise = cfg.NoiseCorr*noise + innov*rng.NormFloat64()
		d += noise
		if rng.Float64() < cfg.SpikeProb {
			d += cfg.SpikeMag * rng.Float64()
		}
		if d < 0 {
			d = 0
		}
		if d > 1.2 {
			d = 1.2 // bounded overload: queueing absorbs the rest
		}
		demand[i] = d
	}
	return &InteractiveTrace{DtS: dtS, Demand: demand}, nil
}

// burstShape returns the burst envelope in [0, 1] at time t.
func (c InteractiveConfig) burstShape(t float64) float64 {
	if t < c.BurstStartS || t > c.BurstEndS {
		return 0
	}
	if c.RampS <= 0 {
		return 1
	}
	up := (t - c.BurstStartS) / c.RampS
	down := (c.BurstEndS - t) / c.RampS
	return math.Min(1, math.Min(math.Max(up, 0), math.Max(down, 0)))
}

// At returns the demand at time t, clamping to the trace bounds.
func (tr *InteractiveTrace) At(t float64) float64 {
	i := int(t / tr.DtS)
	if i < 0 {
		i = 0
	}
	if i >= len(tr.Demand) {
		i = len(tr.Demand) - 1
	}
	return tr.Demand[i]
}

// Duration returns the trace length in seconds.
func (tr *InteractiveTrace) Duration() float64 {
	return float64(len(tr.Demand)) * tr.DtS
}

// Stats summarizes a trace.
type Stats struct {
	Mean, Min, Max, Std float64
}

// Summary computes demand statistics over the whole trace.
func (tr *InteractiveTrace) Summary() Stats {
	if len(tr.Demand) == 0 {
		return Stats{}
	}
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sum2 float64
	for _, d := range tr.Demand {
		sum += d
		sum2 += d * d
		s.Min = math.Min(s.Min, d)
		s.Max = math.Max(s.Max, d)
	}
	n := float64(len(tr.Demand))
	s.Mean = sum / n
	v := sum2/n - s.Mean*s.Mean
	if v > 0 {
		s.Std = math.Sqrt(v)
	}
	return s
}
