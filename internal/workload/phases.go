package workload

import (
	"fmt"
	"math"
)

// Phase is one execution phase of a batch benchmark: real programs
// alternate compute-bound and memory-bound regions, so DVFS leverage and
// core utilization vary over a run. Frac is the fraction of the total work
// spent in the phase.
type Phase struct {
	Frac     float64
	MemBound float64
	Util     float64
}

// validatePhases checks a phase list (empty is allowed: single-phase).
func validatePhases(name string, phases []Phase) error {
	if len(phases) == 0 {
		return nil
	}
	var sum float64
	for i, p := range phases {
		switch {
		case p.Frac <= 0:
			return fmt.Errorf("workload: %s phase %d: Frac must be positive", name, i)
		case p.MemBound < 0 || p.MemBound >= 1:
			return fmt.Errorf("workload: %s phase %d: MemBound must be in [0, 1)", name, i)
		case p.Util <= 0 || p.Util > 1:
			return fmt.Errorf("workload: %s phase %d: Util must be in (0, 1]", name, i)
		}
		sum += p.Frac
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("workload: %s: phase fractions sum to %g, want 1", name, sum)
	}
	return nil
}

// phases returns the effective phase list: the declared phases, or a
// single phase synthesized from the spec's aggregate parameters.
func (s BatchSpec) phases() []Phase {
	if len(s.Phases) > 0 {
		return s.Phases
	}
	return []Phase{{Frac: 1, MemBound: s.MemBound, Util: s.Util}}
}

// EffectiveMemBound returns the work-weighted memory-boundness. Because
// per-unit-work execution time is linear in β, the aggregate progress model
// (Rate, Speedup, FreqForRate) is exact with this averaged value.
func (s BatchSpec) EffectiveMemBound() float64 {
	if len(s.Phases) == 0 {
		return s.MemBound
	}
	var b float64
	for _, p := range s.Phases {
		b += p.Frac * p.MemBound
	}
	return b
}

// phaseRate is the execution speed within one phase at frequency f.
func phaseRate(p Phase, f, fmax float64) float64 {
	if f <= 0 {
		return 0
	}
	if f > fmax {
		f = fmax
	}
	return 1 / (p.MemBound + (1-p.MemBound)*fmax/f)
}

// phaseIndexAt returns the phase containing work position pos ∈ [0, total).
func (s BatchSpec) phaseIndexAt(pos, total float64) int {
	phases := s.phases()
	var cum float64
	for i, p := range phases {
		cum += p.Frac * total
		if pos < cum-1e-12 {
			return i
		}
	}
	return len(phases) - 1
}

// phaseEndWork returns the cumulative work at the end of phase idx.
func (s BatchSpec) phaseEndWork(idx int, total float64) float64 {
	phases := s.phases()
	var cum float64
	for i := 0; i <= idx && i < len(phases); i++ {
		cum += phases[i].Frac * total
	}
	return cum
}

// CurrentPhase returns the phase the job is executing now.
func (j *BatchJob) CurrentPhase() Phase {
	pos := j.totalWork - j.remaining
	return j.Spec.phases()[j.Spec.phaseIndexAt(pos, j.totalWork)]
}

// CurrentUtil returns the utilization of the current phase — what the
// core's performance counters would report this period.
func (j *BatchJob) CurrentUtil() float64 { return j.CurrentPhase().Util }

// RequiredFreq returns the constant frequency that completes the job's
// remaining (phase-aware) work exactly at its deadline, clamped to
// [0, fmax]; fmax if no frequency suffices. Derivation: the remaining wall
// time at frequency f is Σ w_ph·(β_ph + (1−β_ph)·fmax/f) over remaining
// phase segments, linear in fmax/f.
func (j *BatchJob) RequiredFreq(now, fmax float64) float64 {
	if j.Completed() {
		return 0
	}
	left := j.Deadline - now
	if left <= 0 {
		return fmax
	}
	var wBeta, wComp float64 // Σw·β and Σw·(1−β) over remaining work
	pos := j.totalWork - j.remaining
	phases := j.Spec.phases()
	var cum float64
	for _, p := range phases {
		segStart := cum
		cum += p.Frac * j.totalWork
		segEnd := cum
		if segEnd <= pos {
			continue
		}
		w := segEnd - math.Max(segStart, pos)
		wBeta += w * p.MemBound
		wComp += w * (1 - p.MemBound)
	}
	denom := left - wBeta
	if denom <= 0 {
		return fmax // memory stalls alone exceed the deadline budget
	}
	f := fmax * wComp / denom
	if f > fmax {
		f = fmax
	}
	if f < 0 {
		f = 0
	}
	return f
}
