package workload

import "errors"

// SteppedDiurnal builds a deterministic piecewise-constant demand trace: the
// day is divided into equal plateaus of plateauS seconds cycling through
// levels, repeated for the whole duration. Each plateau's demand is the
// exact level value (bit-identical across every tick of the plateau), which
// is the trace shape the discrete-event engine exploits: every plateau is
// one quiescent span candidate, so a day-long run costs O(plateaus), not
// O(seconds). Levels are clamped to the trace's [0, 1.2] demand range.
func SteppedDiurnal(levels []float64, plateauS, durationS, dtS float64) (*InteractiveTrace, error) {
	if len(levels) == 0 {
		return nil, errors.New("workload: SteppedDiurnal needs at least one level")
	}
	if plateauS <= 0 || durationS <= 0 || dtS <= 0 {
		return nil, errors.New("workload: SteppedDiurnal durations must be positive")
	}
	for _, l := range levels {
		if l < 0 || l > 1.2 {
			return nil, errors.New("workload: SteppedDiurnal levels must be in [0, 1.2]")
		}
	}
	n := int(durationS/dtS + 0.5)
	if n < 1 {
		n = 1
	}
	demand := make([]float64, n)
	for i := range demand {
		plateau := int(float64(i) * dtS / plateauS)
		demand[i] = levels[plateau%len(levels)]
	}
	return &InteractiveTrace{DtS: dtS, Demand: demand}, nil
}
