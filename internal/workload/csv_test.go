package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestTraceFromCSV(t *testing.T) {
	in := "time_s,demand_frac\n0,0.4\n1,0.5\n2,0.6\n3,1.5\n"
	tr, err := TraceFromCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.DtS != 1 || len(tr.Demand) != 4 {
		t.Fatalf("dt=%v len=%d", tr.DtS, len(tr.Demand))
	}
	if tr.Demand[0] != 0.4 || tr.Demand[2] != 0.6 {
		t.Fatalf("demand = %v", tr.Demand)
	}
	if tr.Demand[3] != 1.2 {
		t.Fatalf("demand should clamp to 1.2, got %v", tr.Demand[3])
	}
}

func TestTraceFromCSVNoHeader(t *testing.T) {
	tr, err := TraceFromCSV(strings.NewReader("0,0.1\n0.5,0.2\n1.0,0.3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.DtS != 0.5 || len(tr.Demand) != 3 {
		t.Fatalf("dt=%v len=%d", tr.DtS, len(tr.Demand))
	}
}

func TestTraceFromCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"single row":    "0,0.5\n",
		"header only":   "time_s,demand_frac\n0,0.5\n",
		"bad demand":    "0,x\n1,0.5\n",
		"descending":    "0,0.5\n-1,0.5\n",
		"uneven step":   "0,0.5\n1,0.5\n5,0.5\n",
		"wrong columns": "0,0.5,9\n1,0.5,9\n",
		"non-monotonic": "0,0.5\n1,0.5\n0.5,0.5\n",
	}
	for name, in := range cases {
		if _, err := TraceFromCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTraceRoundTripThroughCSV(t *testing.T) {
	// Generate a trace, serialize it the way cmd/tracegen does, reload
	// it, and verify the samples survive.
	orig, err := GenInteractive(DefaultInteractiveConfig(), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString("time_s,demand_frac\n")
	for i, d := range orig.Demand {
		fmt.Fprintf(&buf, "%.3f,%.5f\n", float64(i), d)
	}
	loaded, err := TraceFromCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DtS != 1 || len(loaded.Demand) != len(orig.Demand) {
		t.Fatalf("dt=%v length %d vs %d", loaded.DtS, len(loaded.Demand), len(orig.Demand))
	}
	for i := range orig.Demand {
		if diff := loaded.Demand[i] - orig.Demand[i]; diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("sample %d: %v vs %v", i, loaded.Demand[i], orig.Demand[i])
		}
	}
}
