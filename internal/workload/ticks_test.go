package workload

import (
	"math"
	"math/rand"
	"testing"
)

func jobStateEqual(a, b *BatchJob) bool {
	return math.Float64bits(a.remaining) == math.Float64bits(b.remaining) &&
		math.Float64bits(a.execSecs) == math.Float64bits(b.execSecs) &&
		math.Float64bits(a.doneAt) == math.Float64bits(b.doneAt) &&
		a.completed == b.completed
}

// AdvanceTicks must be bit-identical to the equivalent sequence of Advance
// calls for every spec shape (single-phase, multi-phase), frequency, and
// chunking — including completions and re-execution wraps inside a chunk.
func TestAdvanceTicksMatchesAdvance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range SpecCPU2006() {
		for _, f := range []float64{0.25, 0.4, 0.55, 1.0} {
			ja, err := NewBatchJob(spec, 0, 720)
			if err != nil {
				t.Fatal(err)
			}
			jb, err := NewBatchJob(spec, 0, 720)
			if err != nil {
				t.Fatal(err)
			}
			ja.ScaleWork(0.4 * 720 / spec.PeakSeconds)
			jb.ScaleWork(0.4 * 720 / spec.PeakSeconds)
			const dt, fmax = 1.0, 1.0
			step := 0
			// Push far past one completion so wraps are exercised.
			for step < 4000 {
				n := 1 + rng.Intn(600)
				ja.AdvanceTicks(f, fmax, dt, float64(step)*dt, n)
				for k := 0; k < n; k++ {
					jb.Advance(f, fmax, dt, float64(step+k)*dt)
				}
				step += n
				if !jobStateEqual(ja, jb) {
					t.Fatalf("%s f=%g: state diverged at step %d:\n ticks: rem=%x exec=%x done=%x comp=%d\n loop:  rem=%x exec=%x done=%x comp=%d",
						spec.Name, f, step,
						math.Float64bits(ja.remaining), math.Float64bits(ja.execSecs), math.Float64bits(ja.doneAt), ja.completed,
						math.Float64bits(jb.remaining), math.Float64bits(jb.execSecs), math.Float64bits(jb.doneAt), jb.completed)
				}
			}
			if ja.completed == 0 {
				t.Fatalf("%s f=%g: job never completed; test did not exercise wraps", spec.Name, f)
			}
		}
	}
}

// At f = 0 no work progresses; AdvanceTicks must still accrue wall time
// exactly like Advance.
func TestAdvanceTicksZeroFrequency(t *testing.T) {
	spec := SpecCPU2006()[0]
	ja, _ := NewBatchJob(spec, 0, 720)
	jb, _ := NewBatchJob(spec, 0, 720)
	ja.AdvanceTicks(0, 1, 1, 0, 50)
	for k := 0; k < 50; k++ {
		jb.Advance(0, 1, 1, float64(k))
	}
	if !jobStateEqual(ja, jb) {
		t.Fatal("zero-frequency tick replay diverged from Advance")
	}
}

// StableTicks must be sound: CurrentUtil may not change within the reported
// horizon under constant-frequency execution.
func TestStableTicksSound(t *testing.T) {
	for _, spec := range SpecCPU2006() {
		j, err := NewBatchJob(spec, 0, 720)
		if err != nil {
			t.Fatal(err)
		}
		const f, fmax, dt = 0.6, 1.0, 1.0
		for step := 0; step < 1200; step++ {
			n := j.StableTicks(f, fmax, dt)
			if n > 1200-step {
				n = 1200 - step
			}
			u0 := j.CurrentUtil()
			for k := 0; k < n; k++ {
				j.Advance(f, fmax, dt, float64(step+k)*dt)
				if u := j.CurrentUtil(); u != u0 {
					t.Fatalf("%s: util changed at tick %d of a %d-tick stable horizon (%.4f → %.4f)",
						spec.Name, k, n, u0, u)
				}
			}
			step += n
			j.Advance(f, fmax, dt, float64(step)*dt)
		}
	}
}

// Single-phase specs must report an unbounded stability horizon: their
// utilization never changes, even across re-execution wraps.
func TestStableTicksSinglePhaseUnbounded(t *testing.T) {
	for _, spec := range SteadyStateSpecs() {
		j, _ := NewBatchJob(spec, 0, 720)
		if n := j.StableTicks(0.5, 1, 1); n != math.MaxInt32 {
			t.Fatalf("%s: single-phase spec reported bounded horizon %d", spec.Name, n)
		}
	}
}

func TestSteadyStateSpecsAreSinglePhase(t *testing.T) {
	specs := SteadyStateSpecs()
	if len(specs) == 0 {
		t.Fatal("no steady-state specs")
	}
	for _, s := range specs {
		if len(s.Phases) > 1 {
			t.Fatalf("%s has %d phases", s.Name, len(s.Phases))
		}
	}
}

func TestSteppedDiurnal(t *testing.T) {
	tr, err := SteppedDiurnal([]float64{0.2, 0.8}, 10, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ t, want float64 }{
		{0, 0.2}, {9, 0.2}, {10, 0.8}, {19, 0.8}, {20, 0.2}, {39, 0.8},
	} {
		if got := tr.At(c.t); got != c.want {
			t.Fatalf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if _, err := SteppedDiurnal(nil, 10, 40, 1); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := SteppedDiurnal([]float64{1.5}, 10, 40, 1); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if _, err := SteppedDiurnal([]float64{0.5}, 0, 40, 1); err == nil {
		t.Fatal("zero plateau accepted")
	}
}
