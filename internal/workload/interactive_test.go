package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInteractiveConfigValidate(t *testing.T) {
	if err := DefaultInteractiveConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*InteractiveConfig)
	}{
		{"bad base", func(c *InteractiveConfig) { c.Base = 1.5 }},
		{"bad peak", func(c *InteractiveConfig) { c.BurstPeak = 2 }},
		{"burst backwards", func(c *InteractiveConfig) { c.BurstStartS = 100; c.BurstEndS = 50 }},
		{"bad corr", func(c *InteractiveConfig) { c.NoiseCorr = 1 }},
		{"bad spike prob", func(c *InteractiveConfig) { c.SpikeProb = 2 }},
		{"negative ramp", func(c *InteractiveConfig) { c.RampS = -1 }},
	}
	for _, tc := range cases {
		cfg := DefaultInteractiveConfig()
		tc.mutate(&cfg)
		if _, err := GenInteractive(cfg, 100, 1); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := GenInteractive(DefaultInteractiveConfig(), 0, 1); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := GenInteractive(DefaultInteractiveConfig(), 10, 0); err == nil {
		t.Error("zero dt should fail")
	}
}

func TestGenInteractiveDeterministic(t *testing.T) {
	cfg := DefaultInteractiveConfig()
	a, err := GenInteractive(cfg, 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GenInteractive(cfg, 900, 1)
	for i := range a.Demand {
		if a.Demand[i] != b.Demand[i] {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	cfg.Seed = 2
	c, _ := GenInteractive(cfg, 900, 1)
	same := true
	for i := range a.Demand {
		if a.Demand[i] != c.Demand[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenInteractiveBounds(t *testing.T) {
	tr, err := GenInteractive(DefaultInteractiveConfig(), 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Demand) != 900 {
		t.Fatalf("trace length %d, want 900", len(tr.Demand))
	}
	for i, d := range tr.Demand {
		if d < 0 || d > 1.2 {
			t.Fatalf("demand[%d] = %v out of [0, 1.2]", i, d)
		}
	}
}

func TestBurstRaisesDemand(t *testing.T) {
	cfg := DefaultInteractiveConfig()
	cfg.BurstStartS = 300
	cfg.BurstEndS = 600
	cfg.NoiseStd = 0 // isolate the burst envelope
	cfg.SpikeProb = 0
	cfg.DiurnalAmp = 0
	tr, err := GenInteractive(cfg, 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(100); math.Abs(got-cfg.Base) > 1e-9 {
		t.Fatalf("pre-burst demand %v, want base %v", got, cfg.Base)
	}
	if got := tr.At(450); math.Abs(got-cfg.BurstPeak) > 1e-9 {
		t.Fatalf("mid-burst demand %v, want peak %v", got, cfg.BurstPeak)
	}
	if got := tr.At(800); math.Abs(got-cfg.Base) > 1e-9 {
		t.Fatalf("post-burst demand %v, want base %v", got, cfg.Base)
	}
	// Ramps are strictly between base and peak.
	mid := tr.At(cfg.BurstStartS + cfg.RampS/2)
	if mid <= cfg.Base || mid >= cfg.BurstPeak {
		t.Fatalf("ramp demand %v not between base and peak", mid)
	}
}

func TestTraceFluctuates(t *testing.T) {
	// The UPS controller's job only exists because interactive demand
	// fluctuates; the default trace must not be flat.
	tr, err := GenInteractive(DefaultInteractiveConfig(), 900, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summary()
	if s.Std < 0.02 {
		t.Fatalf("trace std %v too small — no fluctuation to control", s.Std)
	}
	if s.Max-s.Min < 0.1 {
		t.Fatalf("trace range %v too small", s.Max-s.Min)
	}
}

func TestAtClampsOutOfRange(t *testing.T) {
	tr, _ := GenInteractive(DefaultInteractiveConfig(), 10, 1)
	if tr.At(-5) != tr.Demand[0] {
		t.Fatal("At before start should clamp")
	}
	if tr.At(1e9) != tr.Demand[len(tr.Demand)-1] {
		t.Fatal("At past end should clamp")
	}
}

func TestDurationAndEmptySummary(t *testing.T) {
	tr, _ := GenInteractive(DefaultInteractiveConfig(), 120, 0.5)
	if math.Abs(tr.Duration()-120) > 0.5 {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	empty := &InteractiveTrace{DtS: 1}
	if s := empty.Summary(); s.Mean != 0 || s.Std != 0 {
		t.Fatal("empty summary should be zero")
	}
}

// Property: demand stays within bounds for arbitrary seeds and noise levels.
func TestGenInteractiveBoundsProperty(t *testing.T) {
	f := func(seed int64, rawNoise float64) bool {
		cfg := DefaultInteractiveConfig()
		cfg.Seed = seed
		cfg.NoiseStd = math.Mod(math.Abs(rawNoise), 0.3)
		tr, err := GenInteractive(cfg, 300, 1)
		if err != nil {
			return false
		}
		for _, d := range tr.Demand {
			if d < 0 || d > 1.2 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
