// Package workload provides the two workload substrates of the paper's
// evaluation (Section VI-A):
//
//   - batch workloads modeled on the SPEC CPU2006 benchmarks the authors ran
//     (CINT 400/401/403/429 and CFP 433/444/447/450), each with a
//     memory-boundness parameter feeding a CoScale-style progress model [12]
//     that predicts how DVFS affects execution time, and
//   - an interactive workload generator with the statistical shape of the
//     Wikipedia data-center trace [31]: diurnal baseline, a flash-crowd
//     burst, autocorrelated noise and occasional spikes.
//
// The physical trace-collection step of the paper is replaced by these
// deterministic, seeded generators; see DESIGN.md §2 for the substitution
// rationale.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// BatchSpec is the static description of one batch benchmark.
type BatchSpec struct {
	// Name identifies the benchmark (SPEC CPU2006 numbering).
	Name string
	// MemBound is the fraction β of execution time that does not scale
	// with core frequency (memory/IO stalls). The CoScale-style progress
	// model gives relative speed r(f) = 1/(β + (1−β)·f_max/f).
	MemBound float64
	// Util is the core utilization the benchmark sustains while running.
	Util float64
	// PeakSeconds is the execution time at peak frequency.
	PeakSeconds float64
	// Phases optionally subdivides the run into regions with their own
	// memory-boundness and utilization (fractions must sum to 1). Empty
	// means a single uniform phase with the aggregate MemBound/Util.
	Phases []Phase
}

// Validate reports structural errors in the spec.
func (s BatchSpec) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("workload: batch spec needs a name")
	case s.MemBound < 0 || s.MemBound >= 1:
		return fmt.Errorf("workload: %s: MemBound must be in [0, 1)", s.Name)
	case s.Util <= 0 || s.Util > 1:
		return fmt.Errorf("workload: %s: Util must be in (0, 1]", s.Name)
	case s.PeakSeconds <= 0:
		return fmt.Errorf("workload: %s: PeakSeconds must be positive", s.Name)
	}
	return validatePhases(s.Name, s.Phases)
}

// Rate returns the aggregate execution speed at frequency f relative to
// peak frequency fmax: 1 at f = fmax, falling toward 0 as f → 0 for
// compute-bound workloads and staying near 1 for memory-bound ones. For
// phased specs this is exact over a whole execution (per-unit-work time is
// linear in β, so the work-weighted β̄ aggregates exactly).
func (s BatchSpec) Rate(f, fmax float64) float64 {
	if f <= 0 {
		return 0
	}
	if f > fmax {
		f = fmax
	}
	beta := s.EffectiveMemBound()
	return 1 / (beta + (1-beta)*fmax/f)
}

// Speedup returns the speed at f relative to the speed at fref.
func (s BatchSpec) Speedup(f, fref, fmax float64) float64 {
	return s.Rate(f, fmax) / s.Rate(fref, fmax)
}

// FreqForRate inverts Rate: the minimum frequency at which the workload
// achieves relative rate r. Rates at or above the workload's best are
// clamped to fmax; non-positive rates return 0. The power load allocator
// uses this to turn deadline-required rates into frequency (and hence
// power) floors.
func (s BatchSpec) FreqForRate(r, fmax float64) float64 {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return fmax
	}
	beta := s.EffectiveMemBound()
	denom := 1/r - beta
	if denom <= 0 {
		return fmax
	}
	f := (1 - beta) * fmax / denom
	if f > fmax {
		f = fmax
	}
	return f
}

// SpecCPU2006 returns models of the eight benchmarks of the paper's
// physical tests. Memory-boundness values follow published DVFS-sensitivity
// characterizations: mcf and milc are strongly memory bound, namd and
// perlbench almost purely compute bound.
func SpecCPU2006() []BatchSpec {
	return []BatchSpec{
		{Name: "400.perlbench", MemBound: 0.10, Util: 0.99, PeakSeconds: 340},
		{Name: "401.bzip2", MemBound: 0.16, Util: 0.98, PeakSeconds: 290},
		// gcc alternates parsing/optimization (compute) with pointer
		// chasing; its phases average to the aggregate parameters.
		{Name: "403.gcc", MemBound: 0.26, Util: 0.96, PeakSeconds: 260, Phases: []Phase{
			{Frac: 0.40, MemBound: 0.10, Util: 0.98},
			{Frac: 0.35, MemBound: 0.40, Util: 0.94},
			{Frac: 0.25, MemBound: 0.32, Util: 0.95},
		}},
		// mcf's long pointer-chasing phase dominates a short setup phase.
		{Name: "429.mcf", MemBound: 0.58, Util: 0.92, PeakSeconds: 380, Phases: []Phase{
			{Frac: 0.25, MemBound: 0.3000, Util: 0.96},
			{Frac: 0.75, MemBound: 0.6733, Util: 0.90},
		}},
		{Name: "433.milc", MemBound: 0.52, Util: 0.93, PeakSeconds: 330},
		{Name: "444.namd", MemBound: 0.07, Util: 0.99, PeakSeconds: 420},
		{Name: "447.dealII", MemBound: 0.19, Util: 0.97, PeakSeconds: 310},
		// soplex splits evenly between factorization and pricing.
		{Name: "450.soplex", MemBound: 0.44, Util: 0.94, PeakSeconds: 300, Phases: []Phase{
			{Frac: 0.50, MemBound: 0.28, Util: 0.96},
			{Frac: 0.50, MemBound: 0.60, Util: 0.92},
		}},
	}
}

// SteadyStateSpecs returns the single-phase subset of SpecCPU2006. A
// single-phase job's utilization is constant across re-execution wraps, so a
// rack running only these reaches an exact steady state between demand
// edges — the job mix for event-engine benchmarks and bit-identity tests.
func SteadyStateSpecs() []BatchSpec {
	var out []BatchSpec
	for _, s := range SpecCPU2006() {
		if len(s.Phases) <= 1 {
			out = append(out, s)
		}
	}
	return out
}

// Fig1Workloads returns the six workloads used for the paper's Fig. 1
// per-watt-speedup analysis (the six distinct sprinting workloads of [4];
// here, the six most DVFS-diverse of the SPEC set).
func Fig1Workloads() []BatchSpec {
	all := SpecCPU2006()
	return []BatchSpec{all[0], all[2], all[3], all[4], all[5], all[7]}
}

// BatchJob is the mutable execution state of one batch workload instance
// bound to one CPU core.
type BatchJob struct {
	Spec BatchSpec
	// Deadline is the absolute completion deadline in seconds of
	// simulation time; work must finish by then (paper Section VII-D:
	// deferment is not an option).
	Deadline float64

	startTime float64
	totalWork float64 // peak-seconds to complete once
	remaining float64
	doneAt    float64 // first completion time, NaN until complete
	completed int     // completions (paper: jobs re-execute immediately)
	execSecs  float64 // wall seconds spent executing
}

// NewBatchJob starts a job at simulation time start with the given absolute
// deadline. The job's work equals the spec's PeakSeconds.
func NewBatchJob(spec BatchSpec, start, deadline float64) (*BatchJob, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if deadline <= start {
		return nil, fmt.Errorf("workload: %s: deadline %g not after start %g", spec.Name, deadline, start)
	}
	return &BatchJob{
		Spec:      spec,
		Deadline:  deadline,
		startTime: start,
		totalWork: spec.PeakSeconds,
		remaining: spec.PeakSeconds,
		doneAt:    math.NaN(),
	}, nil
}

// ScaleWork multiplies the job's total (and remaining) work, used by the
// experiments to size jobs relative to their deadlines. It must be called
// before any Advance.
func (j *BatchJob) ScaleWork(factor float64) {
	if factor <= 0 {
		panic("workload: ScaleWork factor must be positive")
	}
	if j.execSecs > 0 {
		panic("workload: ScaleWork after execution started")
	}
	j.totalWork *= factor
	j.remaining = j.totalWork
}

// Advance executes the job for dt seconds at frequency f (with table peak
// fmax) starting at simulation time now, walking phase boundaries at their
// own rates. On completion it records the completion time and immediately
// restarts (continuous re-execution, as in the paper's trace methodology).
func (j *BatchJob) Advance(f, fmax, dt, now float64) {
	if dt < 0 {
		panic("workload: negative dt")
	}
	j.execSecs += dt
	timeLeft := dt
	for timeLeft > 1e-12 {
		pos := j.totalWork - j.remaining
		idx := j.Spec.phaseIndexAt(pos, j.totalWork)
		rate := phaseRate(j.Spec.phases()[idx], f, fmax)
		if rate <= 0 {
			return
		}
		segWork := j.Spec.phaseEndWork(idx, j.totalWork) - pos
		if segWork > j.remaining {
			segWork = j.remaining
		}
		segTime := segWork / rate
		if segTime > timeLeft {
			j.remaining -= rate * timeLeft
			return
		}
		timeLeft -= segTime
		j.remaining -= segWork
		if j.remaining <= 1e-9 {
			t := now + (dt - timeLeft) // within-step completion time
			if math.IsNaN(j.doneAt) {
				j.doneAt = t
			}
			j.completed++
			j.remaining = j.totalWork // re-execute immediately
		}
	}
}

// AdvanceTicks executes n consecutive dt-second ticks at constant frequency
// f starting at simulation time now0, bit-identically to calling
// Advance(f, fmax, dt, now0+k·dt) for k = 0..n−1. Ticks that provably stay
// inside the current phase segment take a two-flop fast path (Advance's
// within-segment branch reduces to remaining -= rate·dt when timeLeft = dt);
// ticks that may cross a phase boundary, complete, or wrap fall back to one
// exact Advance call, after which the phase is re-derived. The event engine
// uses this to replay batch progress across quiescent spans in O(phases)
// rather than O(ticks) of full phase walks.
func (j *BatchJob) AdvanceTicks(f, fmax, dt, now0 float64, n int) {
	if dt < 0 {
		panic("workload: negative dt")
	}
	if dt <= 1e-12 {
		// Advance's segment loop never runs at dt ≤ 1e-12: only wall time
		// accrues.
		for k := 0; k < n; k++ {
			j.execSecs += dt
		}
		return
	}
	k := 0
	for k < n {
		pos := j.totalWork - j.remaining
		idx := j.Spec.phaseIndexAt(pos, j.totalWork)
		rate := phaseRate(j.Spec.phases()[idx], f, fmax)
		if rate <= 0 {
			// Advance returns after accruing execSecs when the phase makes
			// no progress, and the phase cannot change without progress.
			for ; k < n; k++ {
				j.execSecs += dt
			}
			return
		}
		endW := j.Spec.phaseEndWork(idx, j.totalWork)
		step := rate * dt // == rate*timeLeft with timeLeft = dt, bit-exact
		for k < n {
			segWork := endW - (j.totalWork - j.remaining)
			if segWork > j.remaining {
				segWork = j.remaining
			}
			// Same comparison as Advance's segTime > timeLeft gate.
			if segWork/rate > dt {
				j.execSecs += dt
				j.remaining -= step
				k++
				continue
			}
			// Boundary, completion or wrap inside this tick: exact slow
			// path, then re-derive the phase.
			j.Advance(f, fmax, dt, now0+float64(k)*dt)
			k++
			break
		}
	}
}

// StableTicks returns a conservative count of whole dt-second ticks of
// execution at constant frequency f during which CurrentUtil() cannot
// change. Single-phase specs report an effectively unbounded horizon: their
// utilization is constant even across re-execution wraps. Multi-phase specs
// report the ticks that certainly remain inside the current phase, which
// the event engine uses as a quiescent-span barrier.
func (j *BatchJob) StableTicks(f, fmax, dt float64) int {
	const unbounded = math.MaxInt32
	phases := j.Spec.phases()
	if len(phases) == 1 {
		return unbounded
	}
	pos := j.totalWork - j.remaining
	idx := j.Spec.phaseIndexAt(pos, j.totalWork)
	rate := phaseRate(phases[idx], f, fmax)
	if rate <= 0 {
		return unbounded // no progress at f ≤ 0: the phase cannot change
	}
	segWork := j.Spec.phaseEndWork(idx, j.totalWork) - pos
	if segWork > j.remaining {
		segWork = j.remaining
	}
	n := int(segWork/rate/dt) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// Progress returns completed fraction of the current execution in [0, 1).
func (j *BatchJob) Progress() float64 { return 1 - j.remaining/j.totalWork }

// WorkDone returns the total work executed so far in peak-seconds
// (completed executions plus the current one's progress) — the throughput
// numerator for energy-efficiency accounting.
func (j *BatchJob) WorkDone() float64 {
	return float64(j.completed)*j.totalWork + (j.totalWork - j.remaining)
}

// Completed reports whether the job has finished at least once.
func (j *BatchJob) Completed() bool { return !math.IsNaN(j.doneAt) }

// Completions returns how many times the job has completed.
func (j *BatchJob) Completions() int { return j.completed }

// CompletionTime returns the first completion time (NaN if none yet).
func (j *BatchJob) CompletionTime() float64 { return j.doneAt }

// MissedDeadline reports whether the first completion came after the
// deadline, or has not come although now is past the deadline.
func (j *BatchJob) MissedDeadline(now float64) bool {
	if j.Completed() {
		return j.doneAt > j.Deadline
	}
	return now >= j.Deadline
}

// RemainingSeconds estimates the wall time to complete the current
// execution at constant frequency f (+Inf at f ≤ 0), integrating across the
// remaining phase segments. This is the "short-term profiling" estimate
// the power load allocator uses.
func (j *BatchJob) RemainingSeconds(f, fmax float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	pos := j.totalWork - j.remaining
	phases := j.Spec.phases()
	var cum, secs float64
	for _, p := range phases {
		segStart := cum
		cum += p.Frac * j.totalWork
		if cum <= pos {
			continue
		}
		w := cum - math.Max(segStart, pos)
		secs += w / phaseRate(p, f, fmax)
	}
	return secs
}

// RequiredRate returns the minimum relative execution rate that still meets
// the deadline from time now (∞ if the deadline has passed with work left).
func (j *BatchJob) RequiredRate(now float64) float64 {
	left := j.Deadline - now
	if left <= 0 {
		if j.remaining > 0 && !j.Completed() {
			return math.Inf(1)
		}
		return 0
	}
	return j.remaining / left
}

// RWeight returns the paper's control-penalty weight for this job's core:
// remaining progress over normalized remaining time before deadline
// (Section V-B: 80 % done, 6 min used, 4 min left → R = 0.5). Jobs that are
// behind schedule get larger R, hence more frequency. After first
// completion the weight reflects a relaxed re-execution (low urgency).
func (j *BatchJob) RWeight(now float64) float64 {
	if j.Completed() {
		return 0.1 // re-execution rounds: lowest urgency
	}
	total := j.Deadline - j.startTime
	left := j.Deadline - now
	if left <= 0 {
		return 100 // past deadline: maximal urgency
	}
	normLeft := left / total
	w := (1 - j.Progress()) / normLeft
	if w < 0.01 {
		w = 0.01
	}
	if w > 100 {
		w = 100
	}
	return w
}
