package workload

import (
	"strings"
	"testing"
)

// FuzzTraceFromCSV checks that arbitrary CSV input never panics and that
// accepted traces respect the demand bounds and have a positive step.
func FuzzTraceFromCSV(f *testing.F) {
	f.Add("time_s,demand_frac\n0,0.4\n1,0.5\n")
	f.Add("0,0.1\n0.5,0.2\n1.0,0.3\n")
	f.Add("")
	f.Add("garbage")
	f.Add("0,0.5\n1,9999\n2,-5\n")
	f.Add("0,0.5\n0,0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := TraceFromCSV(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if tr.DtS <= 0 {
			t.Fatalf("accepted trace with dt %v", tr.DtS)
		}
		if len(tr.Demand) < 2 {
			t.Fatalf("accepted trace with %d samples", len(tr.Demand))
		}
		for i, d := range tr.Demand {
			if d < 0 || d > 1.2 {
				t.Fatalf("sample %d = %v outside [0, 1.2]", i, d)
			}
		}
	})
}

// FuzzBatchAdvance checks work-accounting invariants under arbitrary
// execution schedules: progress stays in [0, 1), work done never shrinks,
// completions are consistent.
func FuzzBatchAdvance(f *testing.F) {
	f.Add(1.0, 10.0, 0.3)
	f.Add(0.4, 1.0, 0.9)
	f.Fuzz(func(t *testing.T, freq, dt, beta float64) {
		if freq < 0.1 || freq > 2.0 || dt < 0 || dt > 1e4 || beta < 0 || beta >= 1 {
			return
		}
		spec := BatchSpec{Name: "f", MemBound: beta, Util: 1, PeakSeconds: 50}
		j, err := NewBatchJob(spec, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		var prevWork float64
		for i := 0; i < 10; i++ {
			j.Advance(freq, 2.0, dt, float64(i)*dt)
			if p := j.Progress(); p < 0 || p >= 1+1e-9 {
				t.Fatalf("progress %v out of range", p)
			}
			w := j.WorkDone()
			if w < prevWork-1e-9 {
				t.Fatalf("work done shrank: %v -> %v", prevWork, w)
			}
			prevWork = w
		}
	})
}
