package daily

import (
	"fmt"
	"math"

	"sprintcon/internal/sim"
)

// DayOutcome is the result of actually simulating a full operating day —
// every sprint in sequence with recharge windows between them and the UPS
// state of charge carried across — rather than extrapolating from one
// sprint as Evaluate does.
type DayOutcome struct {
	Sprints []*sim.Result // per-sprint results, in order

	// StartSoCs records the state of charge each sprint began with.
	StartSoCs []float64
	// MinStartSoC is the worst of them: 1.0 means the charger always
	// kept up.
	MinStartSoC float64
	// FullyRecharged reports whether every sprint started at ≥99 % SoC.
	FullyRecharged bool

	TotalTrips   int
	TotalOutageS float64
	TotalMisses  int
}

// SimulateDay runs the plan's sprints back to back: sprint i uses the UPS
// charge left by sprint i−1 plus whatever the charger restored during the
// gap. newPolicy must return a fresh policy per sprint (policies carry
// per-run state). Sprints see distinct interactive traffic (seed offset).
func SimulateDay(plan Plan, newPolicy func() sim.Policy) (*DayOutcome, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	gapS := 24*3600/float64(plan.SprintsPerDay) - plan.Scenario.DurationS

	out := &DayOutcome{MinStartSoC: 1}
	soc := plan.Scenario.UPS.InitialSoC
	if soc == 0 {
		soc = 1
	}
	for i := 0; i < plan.SprintsPerDay; i++ {
		scn := plan.Scenario
		scn.UPS.InitialSoC = soc
		scn.Interactive.Seed += int64(i)
		scn.Rack.Seed += int64(i)

		out.StartSoCs = append(out.StartSoCs, soc)
		out.MinStartSoC = math.Min(out.MinStartSoC, soc)

		res, err := sim.Run(scn, newPolicy())
		if err != nil {
			return nil, fmt.Errorf("daily: sprint %d: %w", i, err)
		}
		out.Sprints = append(out.Sprints, res)
		out.TotalTrips += res.CBTrips
		out.TotalOutageS += res.OutageS
		out.TotalMisses += res.DeadlineMisses

		// Recharge during the gap: the charger restores energy up to
		// the capacity (losses folded into the plan's RechargeW).
		endSoC := res.Series.SoC[len(res.Series.SoC)-1]
		restoredWh := plan.RechargeW * gapS / 3600
		soc = math.Min(1, endSoC+restoredWh/scn.UPS.CapacityWh)
	}
	out.FullyRecharged = out.MinStartSoC >= 0.99
	return out, nil
}
