// Package daily extends the paper's Section VII-D economics from one
// sprint to an operating regime: the paper argues costs from "the
// 15-minute sprinting process conducted 10 times per day" — this package
// makes that calculation executable. It runs one sprint under a policy,
// then extrapolates battery wear (LFP cycle life at the observed depth of
// discharge), recharge feasibility between sprints, energy cost, and
// battery replacement cost over a provisioning horizon.
package daily

import (
	"errors"
	"fmt"

	"sprintcon/internal/sim"
	"sprintcon/internal/ups"
)

// Plan describes the operating regime to evaluate.
type Plan struct {
	// SprintsPerDay is the sprint frequency (paper: 10).
	SprintsPerDay int
	// Scenario is the per-sprint scenario.
	Scenario sim.Scenario
	// RechargeW is the charger power available between sprints.
	RechargeW float64
	// ElectricityUSDPerKWh prices the energy drawn during sprints.
	ElectricityUSDPerKWh float64
	// BatteryPackUSD is the replacement cost of the UPS battery string.
	BatteryPackUSD float64
	// HorizonYears is the provisioning horizon (paper: 10 years, the
	// LFP chemical life).
	HorizonYears float64
}

// DefaultPlan returns the paper's regime: 10 sprints of 15 minutes per day
// over a 10-year horizon, with list-price-flavored cost constants.
func DefaultPlan() Plan {
	return Plan{
		SprintsPerDay:        10,
		Scenario:             sim.DefaultScenario(),
		RechargeW:            2000,
		ElectricityUSDPerKWh: 0.12,
		BatteryPackUSD:       1200, // 400 Wh LFP string with BMS
		HorizonYears:         10,
	}
}

// Validate reports structural errors in the plan.
func (p Plan) Validate() error {
	switch {
	case p.SprintsPerDay <= 0:
		return errors.New("daily: SprintsPerDay must be positive")
	case p.RechargeW <= 0:
		return errors.New("daily: RechargeW must be positive")
	case p.ElectricityUSDPerKWh < 0 || p.BatteryPackUSD < 0:
		return errors.New("daily: costs must be non-negative")
	case p.HorizonYears <= 0:
		return errors.New("daily: HorizonYears must be positive")
	case float64(p.SprintsPerDay)*p.Scenario.DurationS > 24*3600:
		return errors.New("daily: sprints do not fit in a day")
	}
	return p.Scenario.Validate()
}

// Outcome is the extrapolated result of running the plan under one policy.
type Outcome struct {
	Policy string
	Sprint *sim.Result // the underlying single-sprint result

	// Battery wear.
	DoD              float64
	CycleLifeCycles  float64
	BatteryLifeYears float64
	Replacements     int // replacements needed within the horizon

	// Recharge feasibility between sprints.
	GapS             float64 // idle time between sprint windows
	RechargeNeededS  float64 // time to restore the discharged energy
	RechargeFeasible bool

	// Costs.
	SprintEnergyKWhPerDay float64
	EnergyUSDPerYear      float64
	BatteryUSDPerHorizon  float64 // initial pack + replacements
	TotalUSDPerHorizon    float64
}

// Evaluate runs one sprint under the policy and extrapolates the plan.
func Evaluate(plan Plan, policy sim.Policy) (*Outcome, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	res, err := sim.Run(plan.Scenario, policy)
	if err != nil {
		return nil, fmt.Errorf("daily: %w", err)
	}

	o := &Outcome{Policy: res.Policy, Sprint: res}
	o.DoD = res.UPSDoD
	o.CycleLifeCycles = ups.CycleLife(o.DoD)
	o.BatteryLifeYears = ups.LifetimeYears(o.DoD, float64(plan.SprintsPerDay))
	o.Replacements = ups.ReplacementsOver(plan.HorizonYears, o.DoD, float64(plan.SprintsPerDay))

	o.GapS = 24*3600/float64(plan.SprintsPerDay) - plan.Scenario.DurationS
	// Restoring the cells needs the discharged energy back through the
	// charger (charging losses folded into RechargeW).
	o.RechargeNeededS = res.UPSDischargedWh / plan.RechargeW * 3600
	o.RechargeFeasible = o.RechargeNeededS <= o.GapS

	o.SprintEnergyKWhPerDay = res.EnergyTotalWh * float64(plan.SprintsPerDay) / 1000
	o.EnergyUSDPerYear = o.SprintEnergyKWhPerDay * plan.ElectricityUSDPerKWh * 365
	o.BatteryUSDPerHorizon = plan.BatteryPackUSD * float64(1+o.Replacements)
	o.TotalUSDPerHorizon = o.EnergyUSDPerYear*plan.HorizonYears + o.BatteryUSDPerHorizon
	return o, nil
}
