package daily

import (
	"testing"

	"sprintcon/internal/baseline"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	if err := DefaultPlan().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"zero sprints", func(p *Plan) { p.SprintsPerDay = 0 }},
		{"zero recharge", func(p *Plan) { p.RechargeW = 0 }},
		{"negative cost", func(p *Plan) { p.BatteryPackUSD = -1 }},
		{"zero horizon", func(p *Plan) { p.HorizonYears = 0 }},
		{"too many sprints", func(p *Plan) { p.SprintsPerDay = 1000 }},
		{"bad scenario", func(p *Plan) { p.Scenario.DurationS = 0 }},
	}
	for _, tc := range cases {
		plan := DefaultPlan()
		tc.mutate(&plan)
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// The paper's Section VII-D argument, end to end: at 10 sprints/day
// SprintCon's pack survives the full horizon while the baselines replace
// packs multiple times.
func TestPaperBatteryEconomics(t *testing.T) {
	plan := DefaultPlan()

	sc, err := Evaluate(plan, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Replacements != 0 {
		t.Fatalf("SprintCon replacements = %d, want 0 (chemical-life limited)", sc.Replacements)
	}
	if sc.BatteryLifeYears < plan.HorizonYears {
		t.Fatalf("SprintCon battery life %v years", sc.BatteryLifeYears)
	}
	if !sc.RechargeFeasible {
		t.Fatalf("SprintCon recharge infeasible: needs %v s of %v s gap", sc.RechargeNeededS, sc.GapS)
	}

	v1, err := Evaluate(plan, baseline.New(baseline.SGCTV1))
	if err != nil {
		t.Fatal(err)
	}
	if v1.Replacements < 3 {
		t.Fatalf("V1 replacements = %d, want ≥3 (paper: 3-4 over 10 years)", v1.Replacements)
	}
	if v1.TotalUSDPerHorizon <= sc.TotalUSDPerHorizon {
		t.Fatalf("V1 total cost %v should exceed SprintCon's %v", v1.TotalUSDPerHorizon, sc.TotalUSDPerHorizon)
	}

	sgct, err := Evaluate(plan, baseline.New(baseline.SGCT))
	if err != nil {
		t.Fatal(err)
	}
	if sgct.BatteryLifeYears >= v1.BatteryLifeYears {
		t.Fatalf("full-drain SGCT battery life %v should be worst", sgct.BatteryLifeYears)
	}
	// Full 400 Wh drains at 2 kW take 12 minutes — feasible in the
	// 128.5-minute gap, but far more charger time than SprintCon needs.
	if sgct.RechargeNeededS <= sc.RechargeNeededS {
		t.Fatal("SGCT should need more recharge time than SprintCon")
	}
}

func TestRechargeInfeasibility(t *testing.T) {
	plan := DefaultPlan()
	plan.RechargeW = 20 // a trickle charger cannot keep up with SGCT
	out, err := Evaluate(plan, baseline.New(baseline.SGCT))
	if err != nil {
		t.Fatal(err)
	}
	if out.RechargeFeasible {
		t.Fatal("full drain against a trickle charger should be infeasible")
	}
}

// Simulating the actual day must agree with Evaluate's extrapolation for
// SprintCon: every sprint starts on a full battery and stays safe.
func TestSimulateDaySprintCon(t *testing.T) {
	plan := DefaultPlan()
	day, err := SimulateDay(plan, func() sim.Policy { return core.New(core.DefaultConfig()) })
	if err != nil {
		t.Fatal(err)
	}
	if len(day.Sprints) != plan.SprintsPerDay {
		t.Fatalf("sprints = %d", len(day.Sprints))
	}
	if !day.FullyRecharged {
		t.Fatalf("min start SoC %v: the charger should keep up with SprintCon", day.MinStartSoC)
	}
	if day.TotalTrips != 0 || day.TotalOutageS != 0 || day.TotalMisses != 0 {
		t.Fatalf("day degraded: trips=%d outage=%v misses=%d",
			day.TotalTrips, day.TotalOutageS, day.TotalMisses)
	}
}

// With a trickle charger, SGCT's full drains compound across the day:
// later sprints start on a partially charged battery.
func TestSimulateDayTrickleChargerCompounds(t *testing.T) {
	plan := DefaultPlan()
	plan.SprintsPerDay = 4 // keep the test quick
	plan.RechargeW = 30
	day, err := SimulateDay(plan, func() sim.Policy { return baseline.New(baseline.SGCT) })
	if err != nil {
		t.Fatal(err)
	}
	if day.FullyRecharged {
		t.Fatal("a 30 W charger cannot refill 400 Wh between sprints")
	}
	if day.StartSoCs[1] >= 0.99 {
		t.Fatalf("second sprint started at SoC %v, want partial", day.StartSoCs[1])
	}
	if day.TotalOutageS == 0 {
		t.Fatal("SGCT's day should include outages")
	}
}

func TestEvaluateRejectsBadPlan(t *testing.T) {
	plan := DefaultPlan()
	plan.SprintsPerDay = 0
	if _, err := Evaluate(plan, core.New(core.DefaultConfig())); err == nil {
		t.Fatal("invalid plan should error")
	}
}

func TestCostScalesWithEnergyPrice(t *testing.T) {
	plan := DefaultPlan()
	cheap, err := Evaluate(plan, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	plan.ElectricityUSDPerKWh *= 2
	dear, err := Evaluate(plan, core.New(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if dear.EnergyUSDPerYear <= cheap.EnergyUSDPerYear {
		t.Fatal("energy cost should scale with price")
	}
}
