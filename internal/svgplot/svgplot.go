// Package svgplot renders simulation time series as standalone SVG line
// charts — the vector figures cmd/report emits so the paper's power and
// frequency plots (Figs. 5–7) can be compared visually, not just as
// sparklines. Pure stdlib; no styling dependencies.
package svgplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line.
type Series struct {
	Name string
	Y    []float64 // sampled at X[i]; NaN breaks the line
}

// Chart is one line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Width and Height in pixels (0 selects 760×340).
	Width, Height int
}

// seriesColors is a color-blind-safe cycle.
var seriesColors = []string{
	"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9",
}

const (
	marginLeft   = 64.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 44.0
)

// Render writes the chart as a complete SVG document.
func (c Chart) Render(w io.Writer) error {
	if len(c.X) < 2 {
		return errors.New("svgplot: need at least two x samples")
	}
	if len(c.Series) == 0 {
		return errors.New("svgplot: need at least one series")
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("svgplot: series %q has %d samples for %d x values",
				s.Name, len(s.Y), len(c.X))
		}
	}
	width, height := float64(c.Width), float64(c.Height)
	if width <= 0 {
		width = 760
	}
	if height <= 0 {
		height = 340
	}

	xmin, xmax := c.X[0], c.X[len(c.X)-1]
	if xmax <= xmin {
		return errors.New("svgplot: x range must be increasing")
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		return errors.New("svgplot: no finite y values")
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range 5 % on each side.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	plotW := width - marginLeft - marginRight
	plotH := height - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginTop + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%.0f" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, esc(c.Title))

	// Axes and ticks.
	fmt.Fprintf(&b, `<g stroke="#444" stroke-width="1">`+"\n")
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	b.WriteString("</g>\n")
	for i := 0; i <= 4; i++ {
		fx := xmin + (xmax-xmin)*float64(i)/4
		fy := ymin + (ymax-ymin)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(fx), marginTop+plotH+16, tick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, py(fy)+3, tick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd" stroke-width="0.5"/>`+"\n",
			marginLeft, py(fy), marginLeft+plotW, py(fy))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-8, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, esc(c.YLabel))

	// Series polylines (split at NaN gaps).
	for si, s := range c.Series {
		color := seriesColors[si%len(seriesColors)]
		var pts []string
		flush := func() {
			if len(pts) >= 2 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
					color, strings.Join(pts, " "))
			}
			pts = pts[:0]
		}
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				flush()
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(c.X[i]), py(clampF(v, ymin, ymax))))
		}
		flush()
		// Legend entry.
		lx := marginLeft + plotW - 150
		ly := marginTop + 8 + float64(si)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+18, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+24, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// tick formats an axis tick value compactly.
func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000:
		return fmt.Sprintf("%.1fk", v/1000)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// esc escapes XML-special characters in text content.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
