package svgplot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func demoChart() Chart {
	return Chart{
		Title:  "demo <chart>",
		XLabel: "time (s)",
		YLabel: "power (W)",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Name: "total", Y: []float64{3000, 3100, 3050, 3200}},
			{Name: "cb", Y: []float64{3000, 3000, math.NaN(), 3100}},
		},
	}
}

func TestRenderWellFormedXML(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	s := buf.String()
	for _, want := range []string{"<svg", "polyline", "time (s)", "power (W)", "demo &lt;chart&gt;"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q", want)
		}
	}
}

func TestRenderNaNBreaksLine(t *testing.T) {
	var buf bytes.Buffer
	if err := demoChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	// The cb series has a NaN: its line is split, but with only two
	// points in the first segment and one after, exactly one polyline
	// appears for it plus one for total = 2 total.
	if got := strings.Count(buf.String(), "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
}

func TestRenderValidation(t *testing.T) {
	c := demoChart()
	c.X = []float64{0}
	c.Series[0].Y = []float64{1}
	c.Series[1].Y = []float64{1}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("single x sample should error")
	}
	c = demoChart()
	c.Series = nil
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("no series should error")
	}
	c = demoChart()
	c.Series[0].Y = []float64{1, 2}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("length mismatch should error")
	}
	c = demoChart()
	for i := range c.Series {
		for j := range c.Series[i].Y {
			c.Series[i].Y[j] = math.NaN()
		}
	}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("all-NaN should error")
	}
	c = demoChart()
	c.X = []float64{3, 2, 1, 0}
	if err := c.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("decreasing x should error")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := Chart{
		X:      []float64{0, 1},
		Series: []Series{{Name: "flat", Y: []float64{5, 5}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatalf("flat series should render: %v", err)
	}
}

func TestTickFormatting(t *testing.T) {
	cases := map[float64]string{
		12345: "12.3k",
		150:   "150",
		1.234: "1.2",
		0.05:  "0.05",
	}
	for in, want := range cases {
		if got := tick(in); got != want {
			t.Errorf("tick(%v) = %q, want %q", in, got, want)
		}
	}
}
