// Package engine provides the primitives of the discrete-event simulation
// core (DESIGN.md §15): a streaming state digest used to certify exact
// floating-point fixed points of the controller + plant state machine, and a
// deterministic event queue that merges the barrier events — workload phase
// edges, control-period and allocator budget boundaries, fault onsets and
// clears, checkpoint-capture deadlines, run end — bounding each quiescent
// span. The package is a leaf: control and core hash their state into a
// Digest without importing the simulation engine.
package engine

import "math"

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Digest is a streaming FNV-1a (64-bit) hash over typed values. Two state
// vectors hash equal only if every appended value is bit-identical (floats
// compare by their IEEE-754 bit patterns, so −0 ≠ +0 and NaN payloads
// matter — the strict direction for fixed-point certification). The zero
// value is NOT ready; use NewDigest or Reset.
type Digest struct {
	h uint64
}

// NewDigest returns an initialized digest.
func NewDigest() Digest {
	return Digest{h: fnvOffset64}
}

// Reset reinitializes the digest.
func (d *Digest) Reset() {
	d.h = fnvOffset64
}

// Sum returns the hash of everything appended so far.
func (d *Digest) Sum() uint64 {
	return d.h
}

// U64 appends one 64-bit word, low byte first.
func (d *Digest) U64(v uint64) {
	h := d.h
	h = (h ^ (v & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 8) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 16) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 24) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 32) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 40) & 0xff)) * fnvPrime64
	h = (h ^ ((v >> 48) & 0xff)) * fnvPrime64
	h = (h ^ (v >> 56)) * fnvPrime64
	d.h = h
}

// F64 appends one float64 by bit pattern.
func (d *Digest) F64(v float64) {
	d.U64(math.Float64bits(v))
}

// F64s appends a float64 slice, length first (so [a][b] ≠ [a,b][]).
func (d *Digest) F64s(vs []float64) {
	d.U64(uint64(len(vs)))
	for _, v := range vs {
		d.U64(math.Float64bits(v))
	}
}

// Int appends one int.
func (d *Digest) Int(v int) {
	d.U64(uint64(int64(v)))
}

// Ints appends an int slice, length first.
func (d *Digest) Ints(vs []int) {
	d.U64(uint64(len(vs)))
	for _, v := range vs {
		d.U64(uint64(int64(v)))
	}
}

// Bool appends one bool.
func (d *Digest) Bool(v bool) {
	if v {
		d.U64(1)
	} else {
		d.U64(0)
	}
}

// Bools appends a bool slice, length first.
func (d *Digest) Bools(vs []bool) {
	d.U64(uint64(len(vs)))
	for _, v := range vs {
		d.Bool(v)
	}
}
