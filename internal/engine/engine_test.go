package engine

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDigestDistinguishesBitPatterns(t *testing.T) {
	sum := func(fill func(d *Digest)) uint64 {
		d := NewDigest()
		fill(&d)
		return d.Sum()
	}
	base := sum(func(d *Digest) { d.F64(1.0) })
	if base == sum(func(d *Digest) { d.F64(math.Nextafter(1, 2)) }) {
		t.Fatal("one-ulp difference hashed equal")
	}
	if sum(func(d *Digest) { d.F64(0.0) }) == sum(func(d *Digest) { d.F64(math.Copysign(0, -1)) }) {
		t.Fatal("+0 and −0 hashed equal; the digest must be bit-strict")
	}
	nan1 := math.Float64frombits(0x7ff8000000000001)
	nan2 := math.Float64frombits(0x7ff8000000000002)
	if sum(func(d *Digest) { d.F64(nan1) }) == sum(func(d *Digest) { d.F64(nan2) }) {
		t.Fatal("distinct NaN payloads hashed equal")
	}
}

func TestDigestLengthFraming(t *testing.T) {
	a := NewDigest()
	a.F64s([]float64{1})
	a.F64s(nil)
	b := NewDigest()
	b.F64s(nil)
	b.F64s([]float64{1})
	if a.Sum() == b.Sum() {
		t.Fatal("length framing failed: [1],[] collided with [],[1]")
	}
}

func TestDigestResetMatchesFresh(t *testing.T) {
	d := NewDigest()
	d.F64(3.5)
	d.Reset()
	d.Int(-7)
	d.Bool(true)
	fresh := NewDigest()
	fresh.Int(-7)
	fresh.Bool(true)
	if d.Sum() != fresh.Sum() {
		t.Fatal("Reset digest differs from a fresh digest over the same values")
	}
}

func TestQueueOrdersByStepKindSeq(t *testing.T) {
	var q Queue
	q.Push(10, KindJobPhase)
	q.Push(5, KindCaptureDue)
	q.Push(10, KindRunEnd)
	q.Push(5, KindCaptureDue) // same step+kind: earlier push pops first
	q.Push(7, KindTraceEdge)

	want := []Event{
		{Step: 5, Kind: KindCaptureDue, Seq: 1},
		{Step: 5, Kind: KindCaptureDue, Seq: 3},
		{Step: 7, Kind: KindTraceEdge, Seq: 4},
		{Step: 10, Kind: KindRunEnd, Seq: 2},
		{Step: 10, Kind: KindJobPhase, Seq: 0},
	}
	for i, w := range want {
		e, ok := q.Pop()
		if !ok || e != w {
			t.Fatalf("pop %d: got %+v ok=%v, want %+v", i, e, ok, w)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue returned ok")
	}
}

func TestQueuePopIsDeterministicSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q Queue
	var ref []Event
	for i := 0; i < 500; i++ {
		step := int64(rng.Intn(64))
		kind := Kind(rng.Intn(6))
		q.Push(step, kind)
		ref = append(ref, Event{Step: step, Kind: kind, Seq: uint64(i)})
	}
	sort.Slice(ref, func(i, j int) bool { return eventLess(ref[i], ref[j]) })
	for i, w := range ref {
		e, ok := q.Pop()
		if !ok || e != w {
			t.Fatalf("pop %d: got %+v, want %+v", i, e, w)
		}
	}
}

func TestQueueResetKeepsSequenceMonotonic(t *testing.T) {
	var q Queue
	q.Push(1, KindRunEnd)
	q.Push(2, KindRunEnd)
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("Reset left events pending")
	}
	q.Push(1, KindRunEnd)
	e, _ := q.Pop()
	if e.Seq != 2 {
		t.Fatalf("sequence restarted after Reset: got %d, want 2", e.Seq)
	}
}

func TestQueuePendingRestoreRoundTrip(t *testing.T) {
	var q Queue
	for i := 0; i < 20; i++ {
		q.Push(int64(20-i), Kind(i%6))
	}
	saved := q.Pending()

	var r Queue
	r.Restore(saved)
	if r.Len() != q.Len() {
		t.Fatalf("restored %d events, want %d", r.Len(), q.Len())
	}
	for q.Len() > 0 {
		a, _ := q.Pop()
		b, _ := r.Pop()
		if a != b {
			t.Fatalf("restored queue pops %+v, original pops %+v", b, a)
		}
	}
	// Post-restore pushes must not collide with restored sequence numbers.
	r.Push(1, KindRunEnd)
	e, _ := r.Pop()
	if e.Seq < 20 {
		t.Fatalf("post-restore push reused sequence %d", e.Seq)
	}
}

func TestQueueSteadyStateDoesNotAllocate(t *testing.T) {
	var q Queue
	for i := 0; i < 8; i++ {
		q.Push(int64(i), KindJobPhase) // warm the backing array
	}
	q.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		q.Reset()
		q.Push(3, KindRunEnd)
		q.Push(1, KindTraceEdge)
		q.Push(2, KindPolicyEdge)
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state plan-pop cycle allocates %.1f times per run", allocs)
	}
}
