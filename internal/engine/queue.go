package engine

// Kind classifies a barrier event. The numeric order is part of the
// deterministic tie-break (same step → lower kind first), so values are
// stable API: append new kinds at the end.
type Kind uint8

const (
	// KindRunEnd marks the last step of the run.
	KindRunEnd Kind = iota
	// KindTraceEdge marks the first tick whose interactive demand differs
	// from the span's constant value.
	KindTraceEdge
	// KindJobPhase marks the first tick at which some batch job may cross a
	// workload phase boundary (utilization change).
	KindJobPhase
	// KindPolicyEdge marks the first tick at which the policy's budget
	// schedule (allocator overload/recovery phase, fail-safe expiry) may
	// move.
	KindPolicyEdge
	// KindFaultTransition marks the first tick at which an injected fault
	// changes activity (onset or clear).
	KindFaultTransition
	// KindCaptureDue marks the first tick whose checkpoint capture fires.
	KindCaptureDue
)

// String names the kind for logs and checkpoint dumps.
func (k Kind) String() string {
	switch k {
	case KindRunEnd:
		return "run-end"
	case KindTraceEdge:
		return "trace-edge"
	case KindJobPhase:
		return "job-phase"
	case KindPolicyEdge:
		return "policy-edge"
	case KindFaultTransition:
		return "fault-transition"
	case KindCaptureDue:
		return "capture-due"
	}
	return "unknown"
}

// Event is one pending barrier: the step index at which it fires and why.
// Seq is the insertion sequence, the final tie-break, so the pop order of a
// Queue is a pure function of the push sequence (deterministic across runs
// and across checkpoint restore).
type Event struct {
	Step int64
	Kind Kind
	Seq  uint64
}

// Queue is a deterministic binary min-heap of pending events, ordered by
// (Step, Kind, Seq). The zero value is ready; Reset reuses the backing
// array, so a steady-state plan-pop cycle performs no allocation.
type Queue struct {
	h   []Event
	seq uint64
}

// Reset empties the queue, keeping capacity. Sequence numbers continue, so
// events pushed after a Reset still order deterministically against any
// snapshot taken before it.
func (q *Queue) Reset() {
	q.h = q.h[:0]
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Push inserts an event at the given step.
func (q *Queue) Push(step int64, kind Kind) {
	e := Event{Step: step, Kind: kind, Seq: q.seq}
	q.seq++
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(q.h[i], q.h[parent]) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// Pop removes and returns the earliest event (ok=false when empty).
func (q *Queue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && eventLess(q.h[l], q.h[small]) {
			small = l
		}
		if r < last && eventLess(q.h[r], q.h[small]) {
			small = r
		}
		if small == i {
			break
		}
		q.h[i], q.h[small] = q.h[small], q.h[i]
		i = small
	}
	return top, true
}

// Peek returns the earliest event without removing it.
func (q *Queue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pending returns a copy of the pending events in heap order (not sorted),
// for checkpoint capture; feed them back through Restore to reconstruct an
// equivalent queue.
func (q *Queue) Pending() []Event {
	if len(q.h) == 0 {
		return nil
	}
	return append([]Event(nil), q.h...)
}

// Restore replaces the queue's contents with the given events (as returned
// by Pending) and continues sequence numbering above the largest restored
// Seq, so post-restore pushes cannot collide with restored events.
func (q *Queue) Restore(events []Event) {
	q.h = q.h[:0]
	var maxSeq uint64
	for _, e := range events {
		if e.Seq >= maxSeq {
			maxSeq = e.Seq + 1
		}
	}
	if maxSeq > q.seq {
		q.seq = maxSeq
	}
	for _, e := range events {
		q.h = append(q.h, e)
		i := len(q.h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !eventLess(q.h[i], q.h[parent]) {
				break
			}
			q.h[i], q.h[parent] = q.h[parent], q.h[i]
			i = parent
		}
	}
}

func eventLess(a, b Event) bool {
	if a.Step != b.Step {
		return a.Step < b.Step
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Seq < b.Seq
}
