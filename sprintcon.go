// Package sprintcon is a library reproduction of "SprintCon: Controllable
// and Efficient Computational Sprinting for Data Center Servers"
// (Zheng et al., IPDPS 2019).
//
// Computational sprinting temporarily runs a rack of servers beyond the
// power its circuit breaker is rated for, sourcing the excess from the
// breaker's bounded overload tolerance and from UPS batteries. SprintCon
// makes long (15+ minute) sprints controllable:
//
//   - a power load allocator schedules the breaker target P_cb (periodic
//     overload/recovery) and adapts the batch power budget P_batch every
//     30 s from deadline progress and interactive load;
//   - an MPC server power controller tracks P_batch by scaling the DVFS
//     frequency of every core running batch work, weighting cores by
//     deadline urgency;
//   - a UPS power controller discharges the battery to cover exactly the
//     load above P_cb, keeping the breaker safe;
//   - a supervisor degrades gracefully (stop overloading → fit everything
//     under P_cb with priority bidding → end the sprint).
//
// The package front-door wraps the internal implementation:
//
//	scn := sprintcon.DefaultScenario()          // the paper's 16-server rack
//	res, err := sprintcon.Run(scn, sprintcon.New(sprintcon.DefaultConfig()))
//	fmt.Println(res.AvgFreqInter, res.UPSDoD)   // Fig. 7 / Fig. 8 metrics
//
// Baselines from the paper's evaluation (the SGCT sprinting-game family)
// are available through NewBaseline, and every figure/table of the paper
// can be regenerated through Experiments or the cmd/experiments tool.
package sprintcon

import (
	"fmt"
	"io"

	"sprintcon/internal/baseline"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/daily"
	"sprintcon/internal/experiments"
	"sprintcon/internal/faults"
	"sprintcon/internal/qos"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
	"sprintcon/internal/workload"
)

// Re-exported types: aliases keep the public API in one import path while
// the implementation lives in internal packages.
type (
	// Scenario configures a simulated sprint (rack, breaker, UPS,
	// workloads, deadline).
	Scenario = sim.Scenario
	// Result aggregates a run's metrics and time series.
	Result = sim.Result
	// Series is the per-tick time series of a run.
	Series = sim.Series
	// Policy is a sprinting power-management strategy.
	Policy = sim.Policy
	// Config tunes the SprintCon policy.
	Config = core.Config
	// SprintCon is the paper's controllable sprinting policy.
	SprintCon = core.SprintCon
	// Table is a printable experiment result.
	Table = experiments.Table
	// BatchSpec describes a batch benchmark model.
	BatchSpec = workload.BatchSpec
	// InteractiveConfig parameterizes the interactive load generator.
	InteractiveConfig = workload.InteractiveConfig
	// InteractiveTrace is a demand time series (generated or replayed).
	InteractiveTrace = workload.InteractiveTrace
	// QoSConfig parameterizes the interactive latency model (extension).
	QoSConfig = qos.Config
	// DailyPlan describes a multi-sprint operating regime (extension).
	DailyPlan = daily.Plan
	// DailyOutcome is an evaluated operating regime.
	DailyOutcome = daily.Outcome
	// FaultPlan schedules runtime fault injections for a run
	// (Scenario.Faults).
	FaultPlan = faults.Plan
	// Fault is one scheduled fault (kind, onset, duration, severity,
	// target server).
	Fault = faults.Fault
	// FaultKind names an injectable fault type.
	FaultKind = faults.Kind
	// RunOptions attaches opt-in observability (metrics registry, decision
	// trace, live status) and crash safety (checkpointing, resume) to a
	// run via RunWith.
	RunOptions = sim.RunOptions
	// CheckpointOptions enables crash-safe control-state snapshots every
	// control period (RunOptions.Checkpoint); see DESIGN.md §11.
	CheckpointOptions = sim.CheckpointOptions
	// CheckpointSnapshot is one complete capture of a run's mutable state
	// (controller + plant), restorable via RunOptions.Resume.
	CheckpointSnapshot = checkpoint.Snapshot
	// CheckpointStore persists snapshots and serves the latest one back at
	// controller restarts.
	CheckpointStore = checkpoint.Store
	// MetricsRegistry collects counters, gauges and histograms from every
	// layer of a run; render it with WritePrometheus or Snapshot.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a registry (Result.Telemetry).
	MetricsSnapshot = telemetry.Snapshot
	// DecisionSink streams one structured JSON record per control period.
	DecisionSink = telemetry.DecisionSink
	// Decision is one decision-trace record.
	Decision = telemetry.Decision
)

// DefaultScenario returns the paper's evaluation setup: 16 servers with
// two 4-core CPUs each (150 W idle / 300 W peak), a 3.2 kW breaker
// (1.25× overloadable for 150 s, 300 s recovery), a 400 Wh UPS, a
// Wikipedia-like interactive flash crowd, and SPEC CPU2006-like batch jobs
// with 12-minute deadlines over a 15-minute sprint.
func DefaultScenario() Scenario { return sim.DefaultScenario() }

// DefaultConfig returns the paper-faithful SprintCon tuning.
func DefaultConfig() Config { return core.DefaultConfig() }

// New returns a SprintCon policy.
func New(cfg Config) *SprintCon { return core.New(cfg) }

// NewBaseline returns one of the paper's comparison policies:
// "sgct" (uncontrolled sprinting game), "sgct-v1" (ideally clamped) or
// "sgct-v2" (ideally clamped, interactive priority).
func NewBaseline(name string) (Policy, error) {
	switch name {
	case "sgct":
		return baseline.New(baseline.SGCT), nil
	case "sgct-v1":
		return baseline.New(baseline.SGCTV1), nil
	case "sgct-v2":
		return baseline.New(baseline.SGCTV2), nil
	default:
		return nil, fmt.Errorf("sprintcon: unknown baseline %q (want sgct, sgct-v1 or sgct-v2)", name)
	}
}

// Run simulates the scenario under the policy.
func Run(scn Scenario, p Policy) (*Result, error) { return sim.Run(scn, p) }

// RunWith simulates the scenario with observability attached: a metrics
// registry every control layer reports into, an optional JSONL decision
// trace, and an optional live status holder for HTTP serving. Zero options
// behave exactly like Run.
func RunWith(scn Scenario, p Policy, opts RunOptions) (*Result, error) {
	return sim.RunWith(scn, p, opts)
}

// NewCheckpointFileStore returns a checkpoint store that atomically
// persists the latest snapshot to path (temp file + rename, so a crash
// mid-write leaves the previous intact checkpoint).
func NewCheckpointFileStore(path string) CheckpointStore { return checkpoint.NewFileStore(path) }

// ReadCheckpoint loads a snapshot from a checkpoint file, for
// RunOptions.Resume.
func ReadCheckpoint(path string) (*CheckpointSnapshot, error) { return checkpoint.ReadFile(path) }

// NewMetricsRegistry returns an empty metrics registry for RunOptions.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewDecisionSink returns a decision-trace sink writing JSONL to w.
func NewDecisionSink(w io.Writer) *DecisionSink { return telemetry.NewDecisionSink(w) }

// Experiments regenerates every table and figure of the paper's evaluation
// (see DESIGN.md for the index).
func Experiments() ([]*Table, error) { return experiments.All() }

// SpecCPU2006 returns the batch benchmark models used in the evaluation.
func SpecCPU2006() []BatchSpec { return workload.SpecCPU2006() }

// TraceFromCSV loads an interactive demand trace (time_s,demand_frac) for
// replay through Scenario.Trace.
func TraceFromCSV(r io.Reader) (*InteractiveTrace, error) { return workload.TraceFromCSV(r) }

// FaultKinds lists every injectable fault kind.
func FaultKinds() []FaultKind { return faults.Kinds() }

// ParseFault builds a fault from the CLI-style spec
// "kind:onset:duration[:severity[:server]]",
// e.g. "monitor-freeze:30:300" or "actuator-stuck:60:400:0:3".
func ParseFault(spec string) (Fault, error) { return faults.Parse(spec) }

// DefaultQoSConfig returns the web-serving latency model defaults.
func DefaultQoSConfig() QoSConfig { return qos.DefaultConfig() }

// DefaultDailyPlan returns the paper's "10 sprints/day for 10 years" regime.
func DefaultDailyPlan() DailyPlan { return daily.DefaultPlan() }

// EvaluateDaily extrapolates one sprint to the plan's operating regime:
// battery wear, recharge feasibility, and costs (paper Section VII-D).
func EvaluateDaily(plan DailyPlan, p Policy) (*DailyOutcome, error) {
	return daily.Evaluate(plan, p)
}
