package main

import "sync"

// streamLog is an append-only line buffer that supports replay-then-follow
// subscribers: the decision sinks write JSONL records into it from the
// simulation goroutines, and HTTP handlers stream the lines out as they
// arrive. Each Write call is one complete line (the JSON encoder emits one
// record per Write), so lines never interleave.
//
// The buffer is bounded: beyond max lines the oldest are dropped (the
// writer — the simulation — must never block or grow without bound because
// a stream has no reader, or a slow one). Readers that fall behind the
// drop horizon skip forward and can ask Dropped for how many lines they
// can no longer replay.
type streamLog struct {
	mu      sync.Mutex
	lines   [][]byte
	first   int // global index of lines[0]
	dropped int64
	max     int // 0 = unbounded
	closed  bool
	wake    chan struct{} // closed and replaced on every append/close
}

// newStreamLog returns a log retaining at most max lines (0 = unbounded).
func newStreamLog(max int) *streamLog {
	return &streamLog{max: max, wake: make(chan struct{})}
}

// Write implements io.Writer for telemetry.NewDecisionSink.
func (s *streamLog) Write(p []byte) (int, error) {
	b := make([]byte, len(p))
	copy(b, p)
	s.mu.Lock()
	s.lines = append(s.lines, b)
	// Drop in chunks (hysteresis max/4) so a saturated stream pays the
	// copy once per chunk, not per line.
	if s.max > 0 && len(s.lines) > s.max+s.max/4 {
		k := len(s.lines) - s.max
		s.first += k
		s.dropped += int64(k)
		s.lines = append([][]byte(nil), s.lines[k:]...)
	}
	close(s.wake)
	s.wake = make(chan struct{})
	s.mu.Unlock()
	return len(p), nil
}

// Close marks the log complete; followers drain and return. Idempotent.
func (s *streamLog) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// Dropped returns how many lines the retention bound has discarded.
func (s *streamLog) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// next returns the lines from global index idx on (skipping forward past
// any dropped prefix), the new index, whether the log is complete, and a
// channel that closes when more data (or the close) arrives after this
// snapshot.
func (s *streamLog) next(idx int) ([][]byte, int, bool, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if idx < s.first {
		idx = s.first
	}
	return s.lines[idx-s.first:], s.first + len(s.lines), s.closed, s.wake
}
