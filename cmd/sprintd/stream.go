package main

import "sync"

// streamLog is an append-only line buffer that supports replay-then-follow
// subscribers: the decision sinks write JSONL records into it from the
// simulation goroutines, and HTTP handlers stream the lines out as they
// arrive. Each Write call is one complete line (the JSON encoder emits one
// record per Write), so lines never interleave.
type streamLog struct {
	mu     sync.Mutex
	lines  [][]byte
	closed bool
	wake   chan struct{} // closed and replaced on every append/close
}

func newStreamLog() *streamLog { return &streamLog{wake: make(chan struct{})} }

// Write implements io.Writer for telemetry.NewDecisionSink.
func (s *streamLog) Write(p []byte) (int, error) {
	b := make([]byte, len(p))
	copy(b, p)
	s.mu.Lock()
	s.lines = append(s.lines, b)
	close(s.wake)
	s.wake = make(chan struct{})
	s.mu.Unlock()
	return len(p), nil
}

// Close marks the log complete; followers drain and return.
func (s *streamLog) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.wake)
		s.wake = make(chan struct{})
	}
	s.mu.Unlock()
}

// next returns the lines from index idx on, the new index, whether the log
// is complete, and a channel that closes when more data (or the close)
// arrives after this snapshot.
func (s *streamLog) next(idx int) ([][]byte, int, bool, <-chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lines[idx:], len(s.lines), s.closed, s.wake
}
