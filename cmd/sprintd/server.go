package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"sprintcon/internal/faults"
	"sprintcon/internal/hier"
	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// RunSpec is the JSON body of POST /api/v1/runs. Every field is optional;
// the zero spec runs the acceptance topology (four linked rows of sixteen
// paper racks, auto-provisioned budgets).
type RunSpec struct {
	// Mode selects the runtime: "linked" (default) drives every row
	// through the lease-based control link; "sweep" runs static
	// slot-packed phase offsets on the worker pool (capacity studies at
	// thousands of racks — no link, no decision streams).
	Mode string `json:"mode,omitempty"`
	// Rows and RacksPerRow describe a uniform topology (defaults 4×16).
	// RowConfigs overrides them with explicit per-row shapes.
	Rows        int       `json:"rows,omitempty"`
	RacksPerRow int       `json:"racks_per_row,omitempty"`
	RowConfigs  []RowSpec `json:"row_configs,omitempty"`
	// BuildingBudgetW caps the building feeder; zero auto-provisions at
	// the sum of the row ratings.
	BuildingBudgetW float64 `json:"building_budget_w,omitempty"`
	// DurationS overrides the scenario duration (seconds).
	DurationS float64 `json:"duration_s,omitempty"`
	// Seed offsets every rack's traffic/noise/fault seeds; LinkSeed
	// drives the per-row transports' fault randomness.
	Seed     int64 `json:"seed,omitempty"`
	LinkSeed int64 `json:"link_seed,omitempty"`
	// Serial disables row- and rack-level parallelism (results are
	// bit-identical either way).
	Serial bool `json:"serial,omitempty"`
	// Scenario is a full per-rack scenario document (the sim scenario
	// JSON schema, as written by sprintsim -scenario-out); when absent
	// the paper's default scenario runs.
	Scenario json.RawMessage `json:"scenario,omitempty"`
}

// RowSpec is one row of a RunSpec topology.
type RowSpec struct {
	// Racks is the row size.
	Racks int `json:"racks"`
	// RatingW is the row breaker rating (W); zero auto-provisions the
	// minimum packing.
	RatingW float64 `json:"rating_w,omitempty"`
	// Faults replaces the scenario's fault plan for this row only — e.g.
	// a link-partition that degrades just this subtree.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// config resolves the spec into a hier.Config (without service plumbing).
func (spec RunSpec) config() (hier.Config, error) {
	c := hier.Config{
		BuildingBudgetW: spec.BuildingBudgetW,
		Scenario:        sim.DefaultScenario(),
		SprintCon:       hier.DefaultConfig().SprintCon,
		Seed:            spec.LinkSeed,
		Serial:          spec.Serial,
	}
	if len(spec.Scenario) > 0 {
		scn, err := sim.ScenarioFromJSON(bytes.NewReader(spec.Scenario))
		if err != nil {
			return c, fmt.Errorf("scenario: %w", err)
		}
		c.Scenario = scn
	}
	if spec.DurationS > 0 {
		c.Scenario.DurationS = spec.DurationS
	}
	c.Scenario.Interactive.Seed += spec.Seed
	c.Scenario.Rack.Seed += spec.Seed
	c.Scenario.Faults.Seed += spec.Seed
	switch {
	case len(spec.RowConfigs) > 0:
		for _, r := range spec.RowConfigs {
			c.Rows = append(c.Rows, hier.RowConfig{Racks: r.Racks, RatingW: r.RatingW, Faults: r.Faults})
		}
	default:
		rows, per := spec.Rows, spec.RacksPerRow
		if rows == 0 {
			rows = 4
		}
		if per == 0 {
			per = 16
		}
		for i := 0; i < rows; i++ {
			c.Rows = append(c.Rows, hier.RowConfig{Racks: per})
		}
	}
	return c, nil
}

// run is one submitted scenario and its lifecycle.
type run struct {
	ID      string    `json:"id"`
	Mode    string    `json:"mode"`
	Spec    RunSpec   `json:"spec"`
	Started time.Time `json:"started"`

	cfg     hier.Config
	metrics *telemetry.Registry
	obs     []*obs.Cluster
	streams map[[2]int]*streamLog

	mu         sync.Mutex
	state      string // "running", "done", "failed"
	errMsg     string
	stepsTotal int
	rowStep    []int
	rowAggW    []float64
	finished   time.Time
	linked     *hier.Result
	sweep      *hier.SweepResult
}

// server is the sprintd control plane: a registry of runs behind a mux.
type server struct {
	mu      sync.Mutex
	runs    map[string]*run
	order   []string
	seq     int
	started time.Time
}

func newServer() *server {
	return &server{runs: map[string]*run{}, started: time.Now()}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/runs", s.handleList)
	mux.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /api/v1/runs/{id}/status", s.handleRunStatus)
	mux.HandleFunc("GET /api/v1/runs/{id}/decisions", s.handleDecisions)
	mux.HandleFunc("GET /api/v1/runs/{id}/spans", s.handleSpans)
	mux.HandleFunc("GET /api/v1/runs/{id}/metrics", s.handleRunMetrics)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /status/cluster", s.handleStatusCluster)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Explicit pprof wiring: this mux is deliberately not DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit validates the spec, allocates the run's telemetry plumbing
// and launches it in the background.
func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	mode := spec.Mode
	if mode == "" {
		mode = "linked"
	}
	if mode != "linked" && mode != "sweep" {
		httpError(w, http.StatusBadRequest, "mode %q: want \"linked\" or \"sweep\"", mode)
		return
	}
	cfg, err := spec.config()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := cfg.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	r := &run{
		Mode:    mode,
		Spec:    spec,
		Started: time.Now(),
		cfg:     cfg,
		metrics: telemetry.NewRegistry(),
		state:   "running",
		rowStep: make([]int, len(cfg.Rows)),
		rowAggW: make([]float64, len(cfg.Rows)),
	}
	r.stepsTotal = int(cfg.Scenario.DurationS / cfg.Scenario.DtS)
	r.cfg.Metrics = r.metrics
	r.cfg.OnRowTick = func(row, step int, _ float64, aggW float64) {
		r.mu.Lock()
		r.rowStep[row] = step + 1
		r.rowAggW[row] = aggW
		r.mu.Unlock()
	}
	if mode == "linked" {
		r.streams = map[[2]int]*streamLog{}
		for row, rc := range cfg.Rows {
			r.obs = append(r.obs, obs.NewCluster(rc.Racks, obs.DefaultDetectorConfig()))
			for _, p := range r.obs[row].Racks {
				p.Bind(r.metrics, fmt.Sprintf("obs_row%d_rack%d_", row, p.Rack()))
			}
			for rack := 0; rack < rc.Racks; rack++ {
				r.streams[[2]int{row, rack}] = newStreamLog()
			}
		}
		r.cfg.Obs = r.obs
		r.cfg.RackOptions = func(row, rack int) sim.RunOptions {
			return sim.RunOptions{Decisions: telemetry.NewDecisionSink(r.streams[[2]int{row, rack}])}
		}
	} else {
		r.cfg.OnRowDone = func(row int) {
			r.mu.Lock()
			r.rowStep[row] = r.stepsTotal
			r.mu.Unlock()
		}
	}

	s.mu.Lock()
	s.seq++
	r.ID = fmt.Sprintf("r%d", s.seq)
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
	s.mu.Unlock()

	go r.execute()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": r.ID, "state": "running", "mode": mode})
}

// execute drives the run to completion and closes every decision stream.
func (r *run) execute() {
	var err error
	var linked *hier.Result
	var sweep *hier.SweepResult
	if r.Mode == "sweep" {
		sweep, err = hier.RunSweep(r.cfg)
	} else {
		linked, err = hier.RunLinked(r.cfg)
	}
	r.mu.Lock()
	r.linked, r.sweep, r.finished = linked, sweep, time.Now()
	if err != nil {
		r.state, r.errMsg = "failed", err.Error()
	} else {
		r.state = "done"
	}
	r.mu.Unlock()
	for _, st := range r.streams {
		st.Close()
	}
}

func (s *server) get(req *http.Request) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	return r, ok
}

// latest returns the most recently submitted run, preferring linked runs
// for the cluster-health endpoints (sweeps carry no planes).
func (s *server) latest(needObs bool) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		r := s.runs[s.order[i]]
		if !needObs || len(r.obs) > 0 {
			return r
		}
	}
	return nil
}

// summary is the state document of GET /api/v1/runs/{id}.
func (r *run) summary() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	doc := map[string]any{
		"id":      r.ID,
		"mode":    r.Mode,
		"state":   r.state,
		"started": r.Started,
		"spec":    r.Spec,
	}
	if r.errMsg != "" {
		doc["error"] = r.errMsg
	}
	if r.state == "done" {
		doc["finished"] = r.finished
		doc["wall_seconds"] = r.finished.Sub(r.Started).Seconds()
	}
	if r.linked != nil {
		rows := make([]map[string]any, len(r.linked.Rows))
		for i, row := range r.linked.Rows {
			rows[i] = map[string]any{
				"racks":             r.linked.Alloc.Rows[i].Racks,
				"budget_w":          r.linked.Alloc.Rows[i].BudgetW,
				"slot_capacity":     r.linked.Alloc.Rows[i].SlotCapacity,
				"exceed_frac":       row.FeederExceedFrac,
				"shadow_trips":      row.FeederTrips,
				"degraded_seconds":  row.DegradedS(),
				"resyncs":           row.Resyncs(),
				"cb_trips":          row.CBTrips,
				"deadline_misses":   row.DeadlineMisses,
				"peak_aggregate_w":  row.PeakW,
				"mean_aggregate_w":  row.MeanW,
				"outage_seconds":    row.OutageS,
				"transport_dropped": row.Transport.GrantsLost + row.Transport.BeatsLost,
			}
		}
		doc["result"] = map[string]any{
			"building_budget_w":    r.linked.Alloc.BuildingBudgetW,
			"building_granted_w":   r.linked.Alloc.TotalGrantedW(),
			"building_peak_w":      r.linked.BuildingPeakW,
			"building_mean_w":      r.linked.BuildingMeanW,
			"building_exceed_frac": r.linked.BuildingExceedFrac,
			"building_trips":       r.linked.BuildingTrips,
			"degraded_seconds":     r.linked.DegradedS(),
			"cb_trips":             r.linked.CBTrips,
			"deadline_misses":      r.linked.DeadlineMisses,
			"rows":                 rows,
		}
	}
	if r.sweep != nil {
		rows := make([]map[string]any, len(r.sweep.Rows))
		for i := range r.sweep.Rows {
			rows[i] = map[string]any{
				"racks":         r.sweep.Alloc.Rows[i].Racks,
				"budget_w":      r.sweep.Alloc.Rows[i].BudgetW,
				"slot_capacity": r.sweep.Alloc.Rows[i].SlotCapacity,
				"exceed_frac":   r.sweep.RowExceedFrac[i],
				"shadow_trips":  r.sweep.RowTrips[i],
			}
		}
		doc["result"] = map[string]any{
			"building_budget_w":    r.sweep.Alloc.BuildingBudgetW,
			"building_granted_w":   r.sweep.Alloc.TotalGrantedW(),
			"building_peak_w":      r.sweep.BuildingPeakW,
			"building_mean_w":      r.sweep.BuildingMeanW,
			"building_exceed_frac": r.sweep.BuildingExceedFrac,
			"building_trips":       r.sweep.BuildingTrips,
			"cb_trips":             r.sweep.CBTrips,
			"deadline_misses":      r.sweep.DeadlineMisses,
			"rows":                 rows,
		}
	}
	return doc
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]map[string]any, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		list = append(list, map[string]any{"id": r.ID, "mode": r.Mode, "state": r.state, "started": r.Started})
		r.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": list})
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.summary())
}

// handleRunStatus is the live view: per-row step counters and last
// aggregate draws, usable while the run executes.
func (s *server) handleRunStatus(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	r.mu.Lock()
	rows := make([]map[string]any, len(r.rowStep))
	var building float64
	for i := range r.rowStep {
		rows[i] = map[string]any{
			"step":             r.rowStep[i],
			"steps_total":      r.stepsTotal,
			"last_aggregate_w": r.rowAggW[i],
		}
		building += r.rowAggW[i]
	}
	doc := map[string]any{
		"id":              r.ID,
		"state":           r.state,
		"mode":            r.Mode,
		"steps_total":     r.stepsTotal,
		"rows":            rows,
		"last_building_w": building,
		"elapsed_seconds": time.Since(r.Started).Seconds(),
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

func queryInt(req *http.Request, key string, def int) (int, error) {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// handleDecisions streams one rack's per-control-period decision trace
// (the telemetry JSONL schema) over chunked HTTP: everything recorded so
// far, then — unless ?follow=0 — each new record as the simulation emits
// it, until the run completes or the client disconnects.
func (s *server) handleDecisions(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	row, err := queryInt(req, "row", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "row: %v", err)
		return
	}
	rack, err := queryInt(req, "rack", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "rack: %v", err)
		return
	}
	st, ok := r.streams[[2]int{row, rack}]
	if !ok {
		httpError(w, http.StatusNotFound, "no decision stream for row %d rack %d (sweep runs stream none)", row, rack)
		return
	}
	follow := req.URL.Query().Get("follow") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	idx := 0
	for {
		lines, n, closed, wake := st.next(idx)
		idx = n
		for _, l := range lines {
			if _, err := w.Write(l); err != nil {
				return
			}
		}
		if flusher != nil && len(lines) > 0 {
			flusher.Flush()
		}
		if closed || !follow {
			return
		}
		select {
		case <-wake:
		case <-req.Context().Done():
			return
		}
	}
}

// handleSpans serves one row's causal span trace as JSONL (readable with
// sprintsim -read-spans). Spans stream from the live planes, so a running
// row serves its spans so far.
func (s *server) handleSpans(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	row, err := queryInt(req, "row", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "row: %v", err)
		return
	}
	if row < 0 || row >= len(r.obs) {
		httpError(w, http.StatusNotFound, "no span trace for row %d (sweep runs record none)", row)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = telemetry.WriteSpans(w, r.obs[row].Spans())
}

func (s *server) handleRunMetrics(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.metrics.WritePrometheus(w)
}

func (s *server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r := s.latest(false)
	if r == nil {
		httpError(w, http.StatusNotFound, "no runs yet")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.metrics.WritePrometheus(w)
}

// handleStatus is the service document: uptime, runs and the API surface.
func (s *server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]map[string]any, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		runs = append(runs, map[string]any{"id": r.ID, "mode": r.Mode, "state": r.state})
		r.mu.Unlock()
	}
	uptime := time.Since(s.started).Seconds()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"service":        "sprintd",
		"uptime_seconds": uptime,
		"runs":           runs,
		"endpoints": []string{
			"POST /api/v1/runs", "GET /api/v1/runs", "GET /api/v1/runs/{id}",
			"GET /api/v1/runs/{id}/status", "GET /api/v1/runs/{id}/decisions?row=&rack=&follow=",
			"GET /api/v1/runs/{id}/spans?row=", "GET /api/v1/runs/{id}/metrics",
			"GET /status", "GET /status/cluster", "GET /metrics", "GET /healthz",
		},
	})
}

// handleStatusCluster merges the latest linked run's per-row health
// documents (rollups, alerts) — the hierarchy-wide view of PR-7's
// /status/cluster.
func (s *server) handleStatusCluster(w http.ResponseWriter, req *http.Request) {
	r := s.latest(true)
	if id := req.URL.Query().Get("run"); id != "" {
		s.mu.Lock()
		r = s.runs[id]
		s.mu.Unlock()
	}
	if r == nil || len(r.obs) == 0 {
		httpError(w, http.StatusNotFound, "no linked runs with an observability plane yet")
		return
	}
	r.mu.Lock()
	state := r.state
	r.mu.Unlock()
	rows := make([]any, len(r.obs))
	for i, oc := range r.obs {
		rows[i] = oc.Doc()
	}
	writeJSON(w, http.StatusOK, map[string]any{"run": r.ID, "state": state, "rows": rows})
}
