package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/faults"
	"sprintcon/internal/hier"
	"sprintcon/internal/obs"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// maxRows bounds the accepted topology size: a spec asking for more rows
// than this (uniform or explicit) is rejected before any allocation work.
const maxRows = 1024

// RunSpec is the JSON body of POST /api/v1/runs. Every field is optional;
// the zero spec runs the acceptance topology (four linked rows of sixteen
// paper racks, auto-provisioned budgets).
type RunSpec struct {
	// Mode selects the runtime: "linked" (default) drives every row
	// through the lease-based control link; "sweep" runs static
	// slot-packed phase offsets on the worker pool (capacity studies at
	// thousands of racks — no link, no decision streams).
	Mode string `json:"mode,omitempty"`
	// Rows and RacksPerRow describe a uniform topology (defaults 4×16).
	// RowConfigs overrides them with explicit per-row shapes.
	Rows        int       `json:"rows,omitempty"`
	RacksPerRow int       `json:"racks_per_row,omitempty"`
	RowConfigs  []RowSpec `json:"row_configs,omitempty"`
	// BuildingBudgetW caps the building feeder; zero auto-provisions at
	// the sum of the row ratings.
	BuildingBudgetW float64 `json:"building_budget_w,omitempty"`
	// DurationS overrides the scenario duration (seconds).
	DurationS float64 `json:"duration_s,omitempty"`
	// Seed offsets every rack's traffic/noise/fault seeds; LinkSeed
	// drives the per-row transports' fault randomness.
	Seed     int64 `json:"seed,omitempty"`
	LinkSeed int64 `json:"link_seed,omitempty"`
	// Serial disables row- and rack-level parallelism (results are
	// bit-identical either way).
	Serial bool `json:"serial,omitempty"`
	// Scenario is a full per-rack scenario document (the sim scenario
	// JSON schema, as written by sprintsim -scenario-out); when absent
	// the paper's default scenario runs.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// ChaosPanicAtStep, when positive, deliberately panics inside the run
	// at that step (row 0's tick callback for linked runs, the first
	// row-done callback for sweeps). It is a fault-injection hook for the
	// service chaos harness: the supervisor must isolate the panic, fail
	// only this run, and keep serving.
	ChaosPanicAtStep int `json:"chaos_panic_at_step,omitempty"`
}

// RowSpec is one row of a RunSpec topology.
type RowSpec struct {
	// Racks is the row size.
	Racks int `json:"racks"`
	// RatingW is the row breaker rating (W); zero auto-provisions the
	// minimum packing.
	RatingW float64 `json:"rating_w,omitempty"`
	// Faults replaces the scenario's fault plan for this row only — e.g.
	// a link-partition that degrades just this subtree.
	Faults *faults.Plan `json:"faults,omitempty"`
}

// config resolves the spec into a hier.Config (without service plumbing),
// rejecting structurally absurd shapes with a precise cause before any
// allocation or simulation work happens.
func (spec RunSpec) config() (hier.Config, error) {
	c := hier.Config{
		BuildingBudgetW: spec.BuildingBudgetW,
		Scenario:        sim.DefaultScenario(),
		SprintCon:       hier.DefaultConfig().SprintCon,
		Seed:            spec.LinkSeed,
		Serial:          spec.Serial,
	}
	if spec.Rows < 0 {
		return c, fmt.Errorf("rows is %d; the row count must be non-negative", spec.Rows)
	}
	if spec.Rows > maxRows {
		return c, fmt.Errorf("rows is %d; at most %d rows are supported", spec.Rows, maxRows)
	}
	if spec.RacksPerRow < 0 {
		return c, fmt.Errorf("racks_per_row is %d; the per-row rack count must be non-negative", spec.RacksPerRow)
	}
	if len(spec.RowConfigs) > maxRows {
		return c, fmt.Errorf("row_configs lists %d rows; at most %d rows are supported", len(spec.RowConfigs), maxRows)
	}
	if spec.DurationS < 0 {
		return c, fmt.Errorf("duration_s is %g; the duration must be non-negative seconds", spec.DurationS)
	}
	if spec.ChaosPanicAtStep < 0 {
		return c, fmt.Errorf("chaos_panic_at_step is %d; the chaos step must be non-negative", spec.ChaosPanicAtStep)
	}
	if len(spec.Scenario) > 0 {
		scn, err := sim.ScenarioFromJSON(bytes.NewReader(spec.Scenario))
		if err != nil {
			return c, fmt.Errorf("scenario: %w", err)
		}
		c.Scenario = scn
	}
	if spec.DurationS > 0 {
		c.Scenario.DurationS = spec.DurationS
	}
	c.Scenario.Interactive.Seed += spec.Seed
	c.Scenario.Rack.Seed += spec.Seed
	c.Scenario.Faults.Seed += spec.Seed
	switch {
	case len(spec.RowConfigs) > 0:
		for _, r := range spec.RowConfigs {
			c.Rows = append(c.Rows, hier.RowConfig{Racks: r.Racks, RatingW: r.RatingW, Faults: r.Faults})
		}
	default:
		rows, per := spec.Rows, spec.RacksPerRow
		if rows == 0 {
			rows = 4
		}
		if per == 0 {
			per = 16
		}
		for i := 0; i < rows; i++ {
			c.Rows = append(c.Rows, hier.RowConfig{Racks: per})
		}
	}
	return c, nil
}

// Run states. A run is admitted as "queued", promoted to "running" by the
// dispatcher, and ends in exactly one terminal state: "done", "failed",
// "canceled" (DELETE) or "interrupted" (drain/restart — resumable from the
// journal).
const (
	stateQueued      = "queued"
	stateRunning     = "running"
	stateDone        = "done"
	stateFailed      = "failed"
	stateCanceled    = "canceled"
	stateInterrupted = "interrupted"
)

func terminal(state string) bool {
	return state == stateDone || state == stateFailed || state == stateCanceled
}

// run is one submitted scenario and its lifecycle.
type run struct {
	ID        string    `json:"id"`
	Mode      string    `json:"mode"`
	Spec      RunSpec   `json:"spec"`
	Submitted time.Time `json:"submitted"`

	cfg     hier.Config
	metrics *telemetry.Registry
	obs     []*obs.Cluster

	// stop closes (once) to cancel the run; the target state — canceled
	// for DELETE, interrupted for a drain — is set before the close.
	stop     chan struct{}
	stopOnce sync.Once

	// resume holds journaled row snapshots for a recovered run.
	resume [][]*checkpoint.Snapshot

	mu         sync.Mutex
	state      string
	stopTarget string
	errMsg     string
	Started    time.Time `json:"started"`
	finished   time.Time
	stepsTotal int
	rowStep    []int
	rowAggW    []float64
	streams    map[[2]int]*streamLog
	evicted    bool // decision streams dropped (retention cap or restart)
	recovered  map[string]any
	linked     *hier.Result
	sweep      *hier.SweepResult
}

func (r *run) getState() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// tryStart promotes a queued run to running; false if it was canceled (or
// otherwise moved) while waiting in the queue.
func (r *run) tryStart() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != stateQueued {
		return false
	}
	r.state = stateRunning
	r.Started = time.Now()
	return true
}

// tryCancelQueued cancels a run that is still waiting in the queue.
func (r *run) tryCancelQueued() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != stateQueued {
		return false
	}
	r.state = stateCanceled
	r.finished = time.Now()
	return true
}

// cancel requests cooperative cancellation of a running run; the run loops
// observe the closed channel within one tick and unwind with
// sim.ErrCanceled, after which the supervisor lands the run in target.
func (r *run) cancel(target string) {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		r.stopTarget = target
		r.mu.Unlock()
		close(r.stop)
	})
}

func (r *run) cancelTarget() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopTarget == "" {
		return stateCanceled
	}
	return r.stopTarget
}

// finish lands the run in a terminal state.
func (r *run) finish(state, errMsg string) {
	r.mu.Lock()
	r.state, r.errMsg, r.finished = state, errMsg, time.Now()
	r.mu.Unlock()
}

// closeStreams completes every decision stream so followers drain and
// disconnect. Idempotent.
func (r *run) closeStreams() {
	r.mu.Lock()
	streams := r.streams
	r.mu.Unlock()
	for _, st := range streams {
		st.Close()
	}
}

// stream returns the rack's decision stream, or false if the run never had
// one (sweep) / no longer has one (evicted, restarted).
func (r *run) stream(row, rack int) (*streamLog, bool, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.streams[[2]int{row, rack}]
	return st, ok, r.evicted
}

// execute drives the run to completion and records its result.
func (r *run) execute() error {
	var err error
	if r.Mode == "sweep" {
		var sweep *hier.SweepResult
		sweep, err = hier.RunSweep(r.cfg)
		r.mu.Lock()
		r.sweep = sweep
		r.mu.Unlock()
	} else {
		var linked *hier.Result
		linked, err = hier.RunLinked(r.cfg)
		r.mu.Lock()
		r.linked = linked
		r.mu.Unlock()
	}
	return err
}

// serverConfig tunes the service's admission, retention and durability.
type serverConfig struct {
	// MaxRuns bounds concurrently executing runs; QueueDepth bounds the
	// FIFO of admitted-but-waiting runs behind them. A submission beyond
	// both is rejected with 429 and a Retry-After of RetryAfterS seconds.
	MaxRuns     int
	QueueDepth  int
	RetryAfterS int
	// Retain bounds completed-run history: beyond this many terminal runs
	// with decision streams, the oldest runs' stream buffers are evicted
	// (their records and summaries stay queryable).
	Retain int
	// StreamMaxLines bounds each rack's decision stream buffer;
	// StreamWriteTimeout is the per-write deadline for stream clients —
	// a client that cannot accept a write for this long is disconnected.
	StreamMaxLines     int
	StreamWriteTimeout time.Duration
	// StateDir, when non-empty, enables the durable run journal;
	// CheckpointEveryS is the simulated-seconds cadence of the per-row
	// checkpoint snapshots linked runs persist there.
	StateDir         string
	CheckpointEveryS float64
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		MaxRuns:            4,
		QueueDepth:         16,
		RetryAfterS:        5,
		Retain:             32,
		StreamMaxLines:     1 << 16,
		StreamWriteTimeout: 30 * time.Second,
		CheckpointEveryS:   300,
	}
}

// server is the sprintd control plane: a registry of runs behind a mux,
// with bounded admission, supervised execution and an optional durable
// journal.
type server struct {
	cfg serverConfig
	jn  *journal

	smetrics  *telemetry.Registry
	mPanics   *telemetry.Counter
	mEvicted  *telemetry.Counter
	mRejected *telemetry.Counter
	gRunning  *telemetry.Gauge
	gQueued   *telemetry.Gauge

	wg sync.WaitGroup // one per supervised run

	mu       sync.Mutex
	runs     map[string]*run
	order    []string
	seq      int
	started  time.Time
	queue    []*run
	running  int
	draining bool
}

func newServer(cfg serverConfig) (*server, error) {
	s := &server{cfg: cfg, runs: map[string]*run{}, started: time.Now(), smetrics: telemetry.NewRegistry()}
	s.mPanics = s.smetrics.Counter("sprintd_panics_recovered_total", "panics recovered by the run supervisor")
	s.mEvicted = s.smetrics.Counter("sprintd_runs_evicted_total", "completed runs whose decision streams were evicted by the retention cap")
	s.mRejected = s.smetrics.Counter("sprintd_runs_rejected_total", "submissions rejected because the run queue was full")
	s.gRunning = s.smetrics.Gauge("sprintd_runs_running", "runs currently executing")
	s.gQueued = s.smetrics.Gauge("sprintd_runs_queued", "runs admitted and waiting for a slot")
	if cfg.StateDir != "" {
		jn, err := newJournal(cfg.StateDir)
		if err != nil {
			return nil, err
		}
		s.jn = jn
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.dispatchLocked()
	s.mu.Unlock()
	return s, nil
}

// buildRun assembles a fresh run (state queued) from a validated spec:
// per-run registry, observability planes, bounded decision streams, live
// progress counters and the cancellation channel.
func (s *server) buildRun(spec RunSpec, mode string) (*run, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &run{
		Mode:      mode,
		Spec:      spec,
		Submitted: time.Now(),
		cfg:       cfg,
		metrics:   telemetry.NewRegistry(),
		state:     stateQueued,
		stop:      make(chan struct{}),
		rowStep:   make([]int, len(cfg.Rows)),
		rowAggW:   make([]float64, len(cfg.Rows)),
	}
	r.stepsTotal = int(cfg.Scenario.DurationS / cfg.Scenario.DtS)
	r.cfg.Metrics = r.metrics
	r.cfg.Stop = r.stop
	panicAt := spec.ChaosPanicAtStep
	r.cfg.OnRowTick = func(row, step int, _ float64, aggW float64) {
		if panicAt > 0 && row == 0 && step+1 == panicAt {
			panic(fmt.Sprintf("chaos: injected panic at step %d (chaos_panic_at_step)", panicAt))
		}
		r.mu.Lock()
		r.rowStep[row] = step + 1
		r.rowAggW[row] = aggW
		r.mu.Unlock()
	}
	if mode == "linked" {
		streams := map[[2]int]*streamLog{}
		for row, rc := range cfg.Rows {
			r.obs = append(r.obs, obs.NewCluster(rc.Racks, obs.DefaultDetectorConfig()))
			for _, p := range r.obs[row].Racks {
				p.Bind(r.metrics, fmt.Sprintf("obs_row%d_rack%d_", row, p.Rack()))
			}
			for rack := 0; rack < rc.Racks; rack++ {
				streams[[2]int{row, rack}] = newStreamLog(s.cfg.StreamMaxLines)
			}
		}
		r.streams = streams
		r.cfg.Obs = r.obs
		r.cfg.RackOptions = func(row, rack int) sim.RunOptions {
			return sim.RunOptions{Decisions: telemetry.NewDecisionSink(streams[[2]int{row, rack}])}
		}
	} else {
		r.cfg.OnRowDone = func(row int) {
			if panicAt > 0 && row == 0 {
				panic("chaos: injected panic after row 0 (chaos_panic_at_step)")
			}
			r.mu.Lock()
			r.rowStep[row] = r.stepsTotal
			r.mu.Unlock()
		}
	}
	return r, nil
}

// attach wires the ID-dependent service plumbing: checkpoint persistence
// and resume snapshots. Must run after the run has its ID.
func (s *server) attach(r *run) {
	if s.jn != nil && r.Mode == "linked" && s.cfg.CheckpointEveryS > 0 {
		id := r.ID
		r.cfg.CheckpointEveryS = s.cfg.CheckpointEveryS
		r.cfg.OnRowCheckpoint = func(row int, snaps []*checkpoint.Snapshot) {
			if err := s.jn.saveRowCheckpoint(id, row, snaps); err != nil {
				log.Printf("sprintd: %v", err)
			}
		}
	}
	r.cfg.Resume = r.resume
}

// registerLocked adds the run to the registry; caller holds s.mu.
func (s *server) registerLocked(r *run) {
	s.runs[r.ID] = r
	s.order = append(s.order, r.ID)
}

// recover replays the journal on startup: terminal runs come back as
// queryable records; queued, running and interrupted runs are re-admitted
// and — for linked runs with row checkpoints — resume from their latest
// coherent snapshots. A journaled spec that no longer validates lands the
// run in the fail-safe "failed" state instead of being dropped.
func (s *server) recover() error {
	recs, err := s.jn.load()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		if n := runSeq(rec.ID); n > s.seq {
			s.seq = n
		}
		if rec.Mode == "" {
			rec.Mode = "linked"
		}
		if terminal(rec.State) {
			r := &run{
				ID: rec.ID, Mode: rec.Mode, Spec: rec.Spec,
				Submitted: rec.Submitted, Started: rec.Started,
				state: rec.State, errMsg: rec.Error, finished: rec.Finished,
				recovered: rec.Summary, evicted: true,
			}
			s.registerLocked(r)
			continue
		}
		r, err := s.buildRun(rec.Spec, rec.Mode)
		if err != nil {
			// Fail-safe: the journaled spec no longer builds a runnable
			// configuration; keep the record, mark it failed.
			r = &run{
				Mode: rec.Mode, Spec: rec.Spec, Submitted: rec.Submitted,
				state: stateFailed, errMsg: "recovery: " + err.Error(),
				finished: time.Now(), evicted: true,
			}
			r.ID = rec.ID
			s.registerLocked(r)
			s.journalRun(r)
			continue
		}
		r.ID = rec.ID
		r.Submitted = rec.Submitted
		if r.Mode == "linked" {
			r.resume = s.jn.loadResume(rec.ID, len(r.cfg.Rows))
		}
		s.attach(r)
		s.registerLocked(r)
		s.queue = append(s.queue, r)
		s.journalRun(r)
	}
	return nil
}

// journalRun persists the run's current lifecycle record (no-op without a
// state dir). Terminal records carry the full summary so a restarted
// service can serve results it did not compute.
func (s *server) journalRun(r *run) {
	if s.jn == nil {
		return
	}
	r.mu.Lock()
	rec := journalRecord{
		ID: r.ID, Mode: r.Mode, State: r.state,
		Submitted: r.Submitted, Started: r.Started, Finished: r.finished,
		Error: r.errMsg, Spec: r.Spec,
	}
	isTerminal := terminal(r.state)
	r.mu.Unlock()
	if isTerminal {
		rec.Summary = r.summary()
	}
	if err := s.jn.saveRecord(rec); err != nil {
		log.Printf("sprintd: %v", err)
	}
}

// dispatchLocked starts queued runs while slots are free; caller holds
// s.mu.
func (s *server) dispatchLocked() {
	for s.running < s.cfg.MaxRuns && len(s.queue) > 0 {
		r := s.queue[0]
		s.queue = s.queue[1:]
		if !r.tryStart() {
			continue // canceled while queued
		}
		s.running++
		s.wg.Add(1)
		go s.supervise(r)
	}
	s.gRunning.Set(float64(s.running))
	s.gQueued.Set(float64(len(s.queue)))
}

// supervise executes one run with panic isolation and owns its terminal
// transition, journal record, stream closure and the follow-on dispatch.
func (s *server) supervise(r *run) {
	defer s.wg.Done()
	defer func() {
		if p := recover(); p != nil {
			// A panic that escaped the run fan-out's own isolation (e.g.
			// from a sweep callback on this goroutine).
			r.finish(stateFailed, fmt.Sprintf("panic: %v\n%s", p, debug.Stack()))
			s.mPanics.Inc()
		}
		r.closeStreams()
		s.journalRun(r)
		s.mu.Lock()
		s.running--
		s.dispatchLocked()
		s.mu.Unlock()
		s.maybeEvict()
	}()
	s.journalRun(r)
	err := r.execute()
	switch {
	case err == nil:
		r.finish(stateDone, "")
	case errors.Is(err, sim.ErrCanceled):
		r.finish(r.cancelTarget(), "")
	default:
		r.finish(stateFailed, err.Error())
		var pe *sim.PanicError
		if errors.As(err, &pe) {
			s.mPanics.Inc()
		}
	}
}

// maybeEvict enforces the completed-run retention cap: beyond Retain
// terminal runs holding decision streams, the oldest lose their stream
// buffers (records and summaries stay).
func (s *server) maybeEvict() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var held []*run
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		if terminal(r.state) && !r.evicted && r.streams != nil {
			held = append(held, r)
		}
		r.mu.Unlock()
	}
	for len(held) > s.cfg.Retain {
		r := held[0]
		held = held[1:]
		r.mu.Lock()
		r.streams = nil
		r.evicted = true
		r.mu.Unlock()
		s.mEvicted.Inc()
	}
}

// drain stops admitting, gives in-flight runs a grace period to finish,
// then cancels the stragglers into the resumable "interrupted" state and
// waits for every supervisor to land. Queued runs stay journaled as
// "queued" and are re-admitted on the next start.
func (s *server) drain(grace time.Duration) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return
	case <-time.After(grace):
	}
	s.mu.Lock()
	for _, id := range s.order {
		r := s.runs[id]
		if r.getState() == stateRunning {
			r.cancel(stateInterrupted)
		}
	}
	s.mu.Unlock()
	<-done
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/runs", s.handleList)
	mux.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	mux.HandleFunc("DELETE /api/v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/runs/{id}/status", s.handleRunStatus)
	mux.HandleFunc("GET /api/v1/runs/{id}/decisions", s.handleDecisions)
	mux.HandleFunc("GET /api/v1/runs/{id}/spans", s.handleSpans)
	mux.HandleFunc("GET /api/v1/runs/{id}/metrics", s.handleRunMetrics)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /status/cluster", s.handleStatusCluster)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Explicit pprof wiring: this mux is deliberately not DefaultServeMux.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(doc)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit validates the spec, admits the run through the bounded
// queue (202), or rejects it: 400 for a bad spec, 429 with Retry-After
// when the queue is full, 503 while draining.
func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec RunSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	mode := spec.Mode
	if mode == "" {
		mode = "linked"
	}
	if mode != "linked" && mode != "sweep" {
		httpError(w, http.StatusBadRequest, "mode %q: want \"linked\" or \"sweep\"", mode)
		return
	}
	r, err := s.buildRun(spec, mode)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new runs")
		return
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		queued, running := len(s.queue), s.running
		s.mu.Unlock()
		s.mRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterS))
		httpError(w, http.StatusTooManyRequests,
			"run queue full (%d running, %d queued); retry later", running, queued)
		return
	}
	s.seq++
	r.ID = fmt.Sprintf("r%d", s.seq)
	s.attach(r)
	s.registerLocked(r)
	s.queue = append(s.queue, r)
	s.dispatchLocked()
	s.mu.Unlock()

	state := r.getState() // "running" if dispatched immediately, else "queued"
	s.journalRun(r)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": r.ID, "state": state, "mode": mode})
}

// handleCancel is DELETE /api/v1/runs/{id}: a queued run cancels
// immediately; a running run is asked to stop and lands in "canceled"
// within about one control period; a terminal run is a no-op.
func (s *server) handleCancel(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	if r.tryCancelQueued() {
		r.closeStreams()
		s.journalRun(r)
		writeJSON(w, http.StatusOK, map[string]string{"id": r.ID, "state": stateCanceled})
		return
	}
	if r.getState() == stateRunning {
		r.cancel(stateCanceled)
		writeJSON(w, http.StatusAccepted, map[string]string{"id": r.ID, "state": "canceling"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": r.ID, "state": r.getState()})
}

func (s *server) get(req *http.Request) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	return r, ok
}

// latest returns the most recently submitted run, preferring linked runs
// for the cluster-health endpoints (sweeps carry no planes).
func (s *server) latest(needObs bool) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.order) - 1; i >= 0; i-- {
		r := s.runs[s.order[i]]
		if !needObs || len(r.obs) > 0 {
			return r
		}
	}
	return nil
}

// summary is the state document of GET /api/v1/runs/{id}.
func (r *run) summary() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.recovered != nil {
		// A journal-restored terminal run serves its persisted summary.
		return r.recovered
	}
	doc := map[string]any{
		"id":        r.ID,
		"mode":      r.Mode,
		"state":     r.state,
		"submitted": r.Submitted,
		"spec":      r.Spec,
	}
	if !r.Started.IsZero() {
		doc["started"] = r.Started
	}
	if r.errMsg != "" {
		doc["error"] = r.errMsg
	}
	if !r.finished.IsZero() {
		doc["finished"] = r.finished
		if !r.Started.IsZero() {
			doc["wall_seconds"] = r.finished.Sub(r.Started).Seconds()
		}
	}
	if r.linked != nil {
		rows := make([]map[string]any, len(r.linked.Rows))
		for i, row := range r.linked.Rows {
			rows[i] = map[string]any{
				"racks":             r.linked.Alloc.Rows[i].Racks,
				"budget_w":          r.linked.Alloc.Rows[i].BudgetW,
				"slot_capacity":     r.linked.Alloc.Rows[i].SlotCapacity,
				"exceed_frac":       row.FeederExceedFrac,
				"shadow_trips":      row.FeederTrips,
				"degraded_seconds":  row.DegradedS(),
				"resyncs":           row.Resyncs(),
				"cb_trips":          row.CBTrips,
				"deadline_misses":   row.DeadlineMisses,
				"peak_aggregate_w":  row.PeakW,
				"mean_aggregate_w":  row.MeanW,
				"outage_seconds":    row.OutageS,
				"transport_dropped": row.Transport.GrantsLost + row.Transport.BeatsLost,
			}
		}
		doc["result"] = map[string]any{
			"building_budget_w":    r.linked.Alloc.BuildingBudgetW,
			"building_granted_w":   r.linked.Alloc.TotalGrantedW(),
			"building_peak_w":      r.linked.BuildingPeakW,
			"building_mean_w":      r.linked.BuildingMeanW,
			"building_exceed_frac": r.linked.BuildingExceedFrac,
			"building_trips":       r.linked.BuildingTrips,
			"degraded_seconds":     r.linked.DegradedS(),
			"cb_trips":             r.linked.CBTrips,
			"deadline_misses":      r.linked.DeadlineMisses,
			"resume_step":          r.linked.ResumeStep,
			"rows":                 rows,
		}
	}
	if r.sweep != nil {
		rows := make([]map[string]any, len(r.sweep.Rows))
		for i := range r.sweep.Rows {
			rows[i] = map[string]any{
				"racks":         r.sweep.Alloc.Rows[i].Racks,
				"budget_w":      r.sweep.Alloc.Rows[i].BudgetW,
				"slot_capacity": r.sweep.Alloc.Rows[i].SlotCapacity,
				"exceed_frac":   r.sweep.RowExceedFrac[i],
				"shadow_trips":  r.sweep.RowTrips[i],
			}
		}
		doc["result"] = map[string]any{
			"building_budget_w":    r.sweep.Alloc.BuildingBudgetW,
			"building_granted_w":   r.sweep.Alloc.TotalGrantedW(),
			"building_peak_w":      r.sweep.BuildingPeakW,
			"building_mean_w":      r.sweep.BuildingMeanW,
			"building_exceed_frac": r.sweep.BuildingExceedFrac,
			"building_trips":       r.sweep.BuildingTrips,
			"cb_trips":             r.sweep.CBTrips,
			"deadline_misses":      r.sweep.DeadlineMisses,
			"rows":                 rows,
		}
	}
	return doc
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]map[string]any, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		list = append(list, map[string]any{"id": r.ID, "mode": r.Mode, "state": r.state, "submitted": r.Submitted})
		r.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"runs": list})
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, r.summary())
}

// handleRunStatus is the live view: per-row step counters and last
// aggregate draws, usable while the run executes.
func (s *server) handleRunStatus(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	r.mu.Lock()
	rows := make([]map[string]any, len(r.rowStep))
	var building float64
	for i := range r.rowStep {
		rows[i] = map[string]any{
			"step":             r.rowStep[i],
			"steps_total":      r.stepsTotal,
			"last_aggregate_w": r.rowAggW[i],
		}
		building += r.rowAggW[i]
	}
	doc := map[string]any{
		"id":              r.ID,
		"state":           r.state,
		"mode":            r.Mode,
		"steps_total":     r.stepsTotal,
		"rows":            rows,
		"last_building_w": building,
	}
	if !r.Started.IsZero() {
		doc["elapsed_seconds"] = time.Since(r.Started).Seconds()
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

func queryInt(req *http.Request, key string, def int) (int, error) {
	v := req.URL.Query().Get(key)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// handleDecisions streams one rack's per-control-period decision trace
// (the telemetry JSONL schema) over chunked HTTP: everything recorded so
// far, then — unless ?follow=0 — each new record as the simulation emits
// it, until the run completes or the client disconnects. Every write
// carries a deadline: a client that stalls longer than the configured
// stream write timeout is disconnected rather than allowed to pin server
// memory.
func (s *server) handleDecisions(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	row, err := queryInt(req, "row", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "row: %v", err)
		return
	}
	rack, err := queryInt(req, "rack", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "rack: %v", err)
		return
	}
	st, ok, evicted := r.stream(row, rack)
	if !ok {
		if evicted {
			httpError(w, http.StatusNotFound,
				"decision streams for run %s are gone (evicted by the retention cap, or not retained across a restart)", r.ID)
			return
		}
		httpError(w, http.StatusNotFound, "no decision stream for row %d rack %d (sweep runs stream none)", row, rack)
		return
	}
	follow := req.URL.Query().Get("follow") != "0"

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	idx := 0
	for {
		lines, n, closed, wake := st.next(idx)
		idx = n
		if len(lines) > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.StreamWriteTimeout))
			for _, l := range lines {
				if _, err := w.Write(l); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if closed || !follow {
			return
		}
		select {
		case <-wake:
		case <-req.Context().Done():
			return
		}
	}
}

// handleSpans serves one row's causal span trace as JSONL (readable with
// sprintsim -read-spans). Spans stream from the live planes, so a running
// row serves its spans so far.
func (s *server) handleSpans(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	row, err := queryInt(req, "row", 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "row: %v", err)
		return
	}
	if row < 0 || row >= len(r.obs) {
		httpError(w, http.StatusNotFound, "no span trace for row %d (sweep runs record none)", row)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = telemetry.WriteSpans(w, r.obs[row].Spans())
}

func (s *server) handleRunMetrics(w http.ResponseWriter, req *http.Request) {
	r, ok := s.get(req)
	if !ok {
		httpError(w, http.StatusNotFound, "no run %q", req.PathValue("id"))
		return
	}
	if r.metrics == nil {
		httpError(w, http.StatusNotFound, "run %s has no metrics (journal-restored record)", r.ID)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.metrics.WritePrometheus(w)
}

// handleMetrics serves the service-level registry (supervisor counters,
// admission gauges) followed by the latest run's registry.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.smetrics.WritePrometheus(w)
	if r := s.latest(false); r != nil && r.metrics != nil {
		_ = r.metrics.WritePrometheus(w)
	}
}

// handleStatus is the service document: uptime, runs and the API surface.
func (s *server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]map[string]any, 0, len(s.order))
	for _, id := range s.order {
		r := s.runs[id]
		r.mu.Lock()
		runs = append(runs, map[string]any{"id": r.ID, "mode": r.Mode, "state": r.state})
		r.mu.Unlock()
	}
	uptime := time.Since(s.started).Seconds()
	doc := map[string]any{
		"service":        "sprintd",
		"uptime_seconds": uptime,
		"draining":       s.draining,
		"running":        s.running,
		"queued":         len(s.queue),
		"max_runs":       s.cfg.MaxRuns,
		"queue_depth":    s.cfg.QueueDepth,
		"runs":           runs,
		"endpoints": []string{
			"POST /api/v1/runs", "GET /api/v1/runs", "GET /api/v1/runs/{id}",
			"DELETE /api/v1/runs/{id}",
			"GET /api/v1/runs/{id}/status", "GET /api/v1/runs/{id}/decisions?row=&rack=&follow=",
			"GET /api/v1/runs/{id}/spans?row=", "GET /api/v1/runs/{id}/metrics",
			"GET /status", "GET /status/cluster", "GET /metrics", "GET /healthz",
		},
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, doc)
}

// handleStatusCluster merges the latest linked run's per-row health
// documents (rollups, alerts) — the hierarchy-wide view of PR-7's
// /status/cluster.
func (s *server) handleStatusCluster(w http.ResponseWriter, req *http.Request) {
	r := s.latest(true)
	if id := req.URL.Query().Get("run"); id != "" {
		s.mu.Lock()
		r = s.runs[id]
		s.mu.Unlock()
	}
	if r == nil || len(r.obs) == 0 {
		httpError(w, http.StatusNotFound, "no linked runs with an observability plane yet")
		return
	}
	state := r.getState()
	rows := make([]any, len(r.obs))
	for i, oc := range r.obs {
		rows[i] = oc.Doc()
	}
	writeJSON(w, http.StatusOK, map[string]any{"run": r.ID, "state": state, "rows": rows})
}
