package main

import (
	"fmt"
	"sync"
	"testing"
)

func writeLine(st *streamLog, i int) {
	_, _ = st.Write([]byte(fmt.Sprintf("line %d\n", i)))
}

// TestStreamLogReplayThenFollow: the single-threaded contract — replay
// everything recorded so far, then deltas, then the close.
func TestStreamLogReplayThenFollow(t *testing.T) {
	st := newStreamLog(0)
	for i := 0; i < 3; i++ {
		writeLine(st, i)
	}
	lines, idx, closed, _ := st.next(0)
	if len(lines) != 3 || idx != 3 || closed {
		t.Fatalf("replay: %d lines idx %d closed %v, want 3/3/false", len(lines), idx, closed)
	}
	writeLine(st, 3)
	lines, idx, _, _ = st.next(idx)
	if len(lines) != 1 || string(lines[0]) != "line 3\n" {
		t.Fatalf("delta = %q", lines)
	}
	st.Close()
	st.Close() // idempotent
	if _, _, closed, _ = st.next(idx); !closed {
		t.Fatal("not closed after Close")
	}
	if st.Dropped() != 0 {
		t.Fatalf("unbounded log dropped %d", st.Dropped())
	}
}

// TestStreamLogBounded: beyond the retention bound the oldest lines drop,
// a lagging reader skips forward past the horizon, and the drop count is
// exact.
func TestStreamLogBounded(t *testing.T) {
	const max, total = 10, 100
	st := newStreamLog(max)
	for i := 0; i < total; i++ {
		writeLine(st, i)
	}
	lines, idx, _, _ := st.next(0)
	if idx != total {
		t.Fatalf("idx = %d, want %d (global indices keep counting)", idx, total)
	}
	// Hysteresis keeps at most max+max/4 lines between compactions.
	if len(lines) > max+max/4 || len(lines) < max {
		t.Fatalf("retained %d lines, want within [%d, %d]", len(lines), max, max+max/4)
	}
	if got := st.Dropped(); got != int64(total-len(lines)) {
		t.Fatalf("Dropped = %d, want %d", got, total-len(lines))
	}
	// The retained suffix is contiguous and ends at the newest line.
	for i, l := range lines {
		if want := fmt.Sprintf("line %d\n", total-len(lines)+i); string(l) != want {
			t.Fatalf("retained[%d] = %q, want %q", i, l, want)
		}
	}
	// A reader behind the horizon resumes at the oldest retained line.
	lines, _, _, _ = st.next(5)
	if string(lines[0]) != fmt.Sprintf("line %d\n", total-len(lines)) {
		t.Fatalf("lagging reader resumed at %q", lines[0])
	}
}

// TestStreamLogConcurrent is the -race workout: one writer racing several
// follow readers, a late reader joining after Close, and reads racing the
// Close itself. Every reader must terminate and observe only genuine
// lines.
func TestStreamLogConcurrent(t *testing.T) {
	const total, readers = 500, 4
	st := newStreamLog(64)
	var wg sync.WaitGroup
	counts := make([]int, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			idx := 0
			for {
				lines, n, closed, wake := st.next(idx)
				idx = n
				for _, l := range lines {
					var i int
					if _, err := fmt.Sscanf(string(l), "line %d", &i); err != nil {
						t.Errorf("reader %d: torn line %q", r, l)
						return
					}
					counts[r]++
				}
				if closed {
					return
				}
				<-wake
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			writeLine(st, i)
			_ = st.Dropped() // reads racing writes
		}
		st.Close()
	}()
	wg.Wait()
	for r, n := range counts {
		if n == 0 || n > total {
			t.Errorf("reader %d saw %d lines, want within (0, %d]", r, n, total)
		}
	}
	// A reader that joins after Close drains the retained tail and exits.
	lines, _, closed, _ := st.next(0)
	if !closed || len(lines) == 0 {
		t.Fatalf("late reader: %d lines closed=%v", len(lines), closed)
	}
}
