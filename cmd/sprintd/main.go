// Command sprintd is the long-running hierarchical control-plane service:
// the building → row → rack simulator of internal/hier served over HTTP.
// Operators submit scenarios as JSON, watch per-control-period decisions
// stream back as JSONL, and query live status, cluster health and span
// traces while the run executes. docs/OPERATING.md is the operator's
// guide; the API in brief:
//
//	POST /api/v1/runs                  — submit a run (RunSpec JSON), returns its id
//	GET  /api/v1/runs                  — list runs
//	GET  /api/v1/runs/{id}             — spec, state and final summary
//	GET  /api/v1/runs/{id}/status      — live per-row progress
//	GET  /api/v1/runs/{id}/decisions   — stream one rack's decision trace
//	                                     (?row=&rack=&follow=) as chunked JSONL
//	GET  /api/v1/runs/{id}/spans       — one row's span trace (?row=) as JSONL
//	GET  /api/v1/runs/{id}/metrics     — the run's Prometheus metrics
//	GET  /status                       — service document (runs, uptime)
//	GET  /status/cluster               — latest run's per-row health rollups
//	GET  /metrics                      — latest run's Prometheus metrics
//	GET  /healthz                      — liveness probe
//	GET  /debug/pprof/…                — Go profiling endpoints
//
// Usage:
//
//	sprintd -addr 127.0.0.1:8080
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"sprintcon/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sprintd: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	flag.Parse()

	srv := newServer()
	bound, stop, err := telemetry.Serve(*addr, srv.handler())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s (see docs/OPERATING.md)", bound)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Print("shutting down")
	if err := stop(); err != nil {
		log.Fatal(err)
	}
}
