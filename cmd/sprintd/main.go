// Command sprintd is the long-running hierarchical control-plane service:
// the building → row → rack simulator of internal/hier served over HTTP.
// Operators submit scenarios as JSON, watch per-control-period decisions
// stream back as JSONL, and query live status, cluster health and span
// traces while the run executes. docs/OPERATING.md is the operator's
// guide; the API in brief:
//
//	POST   /api/v1/runs                — submit a run (RunSpec JSON), returns its id
//	GET    /api/v1/runs                — list runs
//	GET    /api/v1/runs/{id}           — spec, state and final summary
//	DELETE /api/v1/runs/{id}           — cancel a queued or running run
//	GET    /api/v1/runs/{id}/status    — live per-row progress
//	GET    /api/v1/runs/{id}/decisions — stream one rack's decision trace
//	                                     (?row=&rack=&follow=) as chunked JSONL
//	GET    /api/v1/runs/{id}/spans     — one row's span trace (?row=) as JSONL
//	GET    /api/v1/runs/{id}/metrics   — the run's Prometheus metrics
//	GET    /status                     — service document (runs, uptime, admission)
//	GET    /status/cluster             — latest run's per-row health rollups
//	GET    /metrics                    — service + latest run Prometheus metrics
//	GET    /healthz                    — liveness probe
//	GET    /debug/pprof/…              — Go profiling endpoints
//
// Runs are supervised: at most -max-runs execute concurrently with a
// bounded admission queue behind them (429 + Retry-After beyond it), a
// panicking run fails alone while the service keeps serving, and with
// -state-dir every run is journaled and checkpointed so a crash or restart
// loses no run records — interrupted runs resume from their latest row
// snapshots. SIGTERM drains gracefully: admission stops, in-flight runs
// get -drain-grace to finish, stragglers are checkpointed and stopped.
//
// Usage:
//
//	sprintd -addr 127.0.0.1:8080 -state-dir /var/lib/sprintd
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sprintd: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
	stateDir := flag.String("state-dir", "", "durable run-journal directory (empty = in-memory only)")
	maxRuns := flag.Int("max-runs", 4, "maximum concurrently executing runs")
	queueDepth := flag.Int("queue-depth", 16, "admission queue length behind the running set (429 beyond it)")
	retain := flag.Int("retain", 32, "completed runs whose decision-stream buffers are retained in memory")
	ckptEvery := flag.Float64("checkpoint-every", 300, "simulated seconds between row checkpoints (with -state-dir)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "how long SIGTERM lets in-flight runs finish before stopping them")
	flag.Parse()

	cfg := defaultServerConfig()
	cfg.StateDir = *stateDir
	cfg.MaxRuns = *maxRuns
	cfg.QueueDepth = *queueDepth
	cfg.Retain = *retain
	cfg.CheckpointEveryS = *ckptEvery
	s, err := newServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout stays zero: decision streams are long-lived; the
		// stream handler sets a per-write deadline instead.
	}
	log.Printf("listening on http://%s (see docs/OPERATING.md)", ln.Addr())
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	log.Printf("draining (grace %s)", *drainGrace)
	s.drain(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Print("stopped")
}
