package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// The service chaos harness (make chaos-service): submission storms mixed
// with invalid specs, cancellations, slow and disconnecting stream
// clients, and kill -9 + restart against a shared state dir. Invariants:
// the service never stops serving /healthz, every accepted run reaches a
// terminal state (no stuck runs), and no run record is ever lost.

// TestChaosServiceStorm floods a small service with concurrent
// submissions (half of them invalid), attaches stream clients that never
// read or disconnect immediately, and cancels a few runs mid-flight.
func TestChaosServiceStorm(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.MaxRuns = 2
	cfg.QueueDepth = 4
	cfg.Retain = 2
	cfg.StreamMaxLines = 64
	cfg.StreamWriteTimeout = 500 * time.Millisecond
	_, ts := newTestService(t, cfg)

	specs := []string{
		`{"rows": 1, "racks_per_row": 2, "duration_s": 240}`,
		`{"mode": "sweep", "rows": 1, "racks_per_row": 2, "duration_s": 240}`,
		`{"rows": 1, "racks_per_row": 2, "duration_s": 240, "chaos_panic_at_step": 30}`,
		`{"rows": -3}`, // invalid: rejected up front
		`{"bogus": 1}`, // invalid: unknown field
	}
	var (
		mu       sync.Mutex
		accepted []string
		wg       sync.WaitGroup
	)
	for round := 0; round < 6; round++ {
		for i, spec := range specs {
			wg.Add(1)
			go func(round, i int, spec string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
				if err != nil {
					t.Errorf("storm submit: %v", err)
					return
				}
				defer resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var doc map[string]any
					if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
						t.Errorf("storm decode: %v", err)
						return
					}
					mu.Lock()
					accepted = append(accepted, doc["id"].(string))
					mu.Unlock()
				case http.StatusBadRequest, http.StatusTooManyRequests:
				default:
					t.Errorf("storm round %d spec %d: status %d", round, i, resp.StatusCode)
				}
			}(round, i, spec)
		}
	}
	// A liveness prober runs throughout the storm.
	probeStop := make(chan struct{})
	var probeWG sync.WaitGroup
	probeWG.Add(1)
	go func() {
		defer probeWG.Done()
		for {
			select {
			case <-probeStop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Errorf("healthz during storm: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("healthz during storm: %d", resp.StatusCode)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	wg.Wait()

	// Abusive stream clients against whatever got accepted: one connects
	// and never reads, one disconnects immediately.
	mu.Lock()
	ids := append([]string(nil), accepted...)
	mu.Unlock()
	addr := strings.TrimPrefix(ts.URL, "http://")
	var conns []net.Conn
	for i, id := range ids {
		if i >= 4 {
			break
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "GET /api/v1/runs/%s/decisions?row=0&rack=0 HTTP/1.1\r\nHost: sprintd\r\n\r\n", id)
		if i%2 == 0 {
			conn.Close() // immediate disconnect
		} else {
			conns = append(conns, conn) // attached, never reads
		}
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Cancel a couple of runs mid-storm.
	for i, id := range ids {
		if i%4 != 0 {
			continue
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	// Every accepted run reaches a terminal state — none stuck, none lost.
	for _, id := range ids {
		waitState(t, ts, id, "done", "failed", "canceled")
	}
	var list map[string]any
	getJSON(t, ts.URL+"/api/v1/runs", &list)
	listed := map[string]bool{}
	for _, r := range list["runs"].([]any) {
		listed[r.(map[string]any)["id"].(string)] = true
	}
	for _, id := range ids {
		if !listed[id] {
			t.Errorf("accepted run %s lost from the registry", id)
		}
	}
	close(probeStop)
	probeWG.Wait()
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after storm = %d", code)
	}
}

// TestSprintdHelperProcess is not a test: it is the re-exec target the
// kill/restart chaos test spawns as a real sprintd process.
func TestSprintdHelperProcess(t *testing.T) {
	if os.Getenv("SPRINTD_CHAOS_HELPER") != "1" {
		t.Skip("spawned only as the kill/restart chaos helper")
	}
	flag.CommandLine = flag.NewFlagSet("sprintd", flag.ExitOnError)
	os.Args = []string{
		"sprintd",
		"-addr=127.0.0.1:0",
		"-state-dir=" + os.Getenv("SPRINTD_CHAOS_DIR"),
		"-checkpoint-every=300",
		"-drain-grace=200ms",
	}
	main()
	os.Exit(0)
}

// helperProc is one spawned sprintd instance.
type helperProc struct {
	cmd *exec.Cmd
	url string
}

// startHelper re-execs the test binary as a sprintd process on a free
// port against dir, and parses the bound address from its log output.
func startHelper(t *testing.T, dir string) *helperProc {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestSprintdHelperProcess$")
	cmd.Env = append(os.Environ(), "SPRINTD_CHAOS_HELPER=1", "SPRINTD_CHAOS_DIR="+dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addr := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "listening on http://"); ok {
				host, _, _ := strings.Cut(rest, " ")
				addr <- host
			}
		}
	}()
	select {
	case a := <-addr:
		return &helperProc{cmd: cmd, url: "http://" + a}
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("helper sprintd never reported its address")
		return nil
	}
}

func (h *helperProc) post(t *testing.T, spec string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(h.url+"/api/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	return resp.StatusCode, doc
}

func (h *helperProc) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(h.url + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestChaosServiceKillRestart is the durability acceptance check: kill -9
// a sprintd with a terminal run and a checkpointed in-flight run, restart
// it on the same state dir, and every journaled run must come back — the
// finished one with its full summary, the interrupted one resuming from
// its latest row snapshots. A final SIGTERM must drain cleanly.
func TestChaosServiceKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level kill/restart chaos skipped in -short mode")
	}
	dir := t.TempDir()
	// CI points SPRINTD_CHAOS_STATE at a workspace path so the journal
	// survives the run and can be uploaded as an artifact on failure.
	if keep := os.Getenv("SPRINTD_CHAOS_STATE"); keep != "" {
		dir = filepath.Join(keep, "killrestart")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	h := startHelper(t, dir)
	defer func() { _ = h.cmd.Process.Kill() }()

	// One run to completion: its record and summary must survive kill -9.
	code, doc := h.post(t, `{"rows": 1, "racks_per_row": 2, "duration_s": 240}`)
	if code != http.StatusAccepted {
		t.Fatalf("short submit: %d", code)
	}
	shortID := doc["id"].(string)
	deadline := time.Now().Add(time.Minute)
	for {
		var d map[string]any
		h.getJSON(t, "/api/v1/runs/"+shortID, &d)
		if d["state"] == "done" {
			break
		}
		if d["state"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("short run state %v", d["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One run far too long to finish, with checkpoints every 300 simulated
	// seconds; wait for the first row snapshot to land on disk.
	code, doc = h.post(t, `{"rows": 1, "racks_per_row": 2, "duration_s": 864000}`)
	if code != http.StatusAccepted {
		t.Fatalf("long submit: %d", code)
	}
	longID := doc["id"].(string)
	ckpt := filepath.Join(dir, "runs", longID, "row0.ckpt")
	for deadline = time.Now().Add(time.Minute); ; {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no row checkpoint appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// kill -9: no drain, no journal flush beyond what is already atomic
	// on disk.
	if err := h.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = h.cmd.Wait()

	h2 := startHelper(t, dir)
	defer func() { _ = h2.cmd.Process.Kill() }()

	// Zero lost records: both runs are listed; the finished one serves its
	// journaled summary, the interrupted one was re-admitted.
	var list map[string]any
	h2.getJSON(t, "/api/v1/runs", &list)
	states := map[string]string{}
	for _, r := range list["runs"].([]any) {
		m := r.(map[string]any)
		states[m["id"].(string)] = m["state"].(string)
	}
	if states[shortID] != "done" {
		t.Fatalf("finished run recovered as %q, want done", states[shortID])
	}
	if s := states[longID]; s != "queued" && s != "running" {
		t.Fatalf("interrupted run recovered as %q, want queued or running", s)
	}
	var summary map[string]any
	h2.getJSON(t, "/api/v1/runs/"+shortID, &summary)
	if summary["result"] == nil {
		t.Fatal("finished run lost its result summary across kill -9")
	}
	// Decision streams are memory-only and must 404 with a cause, not hang.
	if code := h2.getJSON(t, "/api/v1/runs/"+shortID+"/decisions?follow=0", nil); code != http.StatusNotFound {
		t.Fatalf("restarted decisions: %d, want 404", code)
	}

	// The interrupted run resumes from its checkpoint: the first progress
	// it reports starts at the snapshot step, not zero.
	for deadline = time.Now().Add(time.Minute); ; {
		var status map[string]any
		h2.getJSON(t, "/api/v1/runs/"+longID+"/status", &status)
		if rows, ok := status["rows"].([]any); ok && len(rows) > 0 {
			if step := rows[0].(map[string]any)["step"].(float64); step > 0 {
				if step < 300 {
					t.Fatalf("resumed run reported step %g, want ≥ 300 (the checkpoint cadence)", step)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed run never progressed")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Cancel it, then SIGTERM: the drain must exit the process cleanly.
	req, _ := http.NewRequest(http.MethodDelete, h2.url+"/api/v1/runs/"+longID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for deadline = time.Now().Add(time.Minute); ; {
		var d map[string]any
		h2.getJSON(t, "/api/v1/runs/"+longID, &d)
		if d["state"] == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never canceled", longID)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := h2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- h2.cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("helper did not exit on SIGTERM")
	}

	// The canceled state survived the shutdown in the journal.
	b, err := os.ReadFile(filepath.Join(dir, "runs", longID, "record.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec journalRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != "canceled" {
		t.Fatalf("journaled state %q, want canceled", rec.State)
	}
}
