package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestService starts a service with the given configuration and returns
// both the server (for drain etc.) and its HTTP front.
func newTestService(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs a spec and returns the response status, parsed body and the
// Retry-After header.
func submit(t *testing.T, ts *httptest.Server, spec string) (int, map[string]any, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	_ = json.Unmarshal(buf.Bytes(), &doc)
	return resp.StatusCode, doc, resp.Header.Get("Retry-After")
}

// waitState polls the run document until it reaches one of the states.
func waitState(t *testing.T, ts *httptest.Server, id string, states ...string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		var doc map[string]any
		if code := getJSON(t, ts.URL+"/api/v1/runs/"+id, &doc); code != http.StatusOK {
			t.Fatalf("run %s: status %d", id, code)
		}
		for _, want := range states {
			if doc["state"] == want {
				return doc
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s never reached %v", id, states)
	return nil
}

// longSpec is a linked run that cannot finish during a test on its own.
const longSpec = `{"rows": 1, "racks_per_row": 2, "duration_s": 864000}`

// TestAdmissionStormOnlyAcceptsOrRejects: a submission storm at twice the
// service's capacity yields only 202s (exactly capacity many) and 429s
// carrying Retry-After — nothing hangs, nothing 500s.
func TestAdmissionStormOnlyAcceptsOrRejects(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.MaxRuns = 1
	cfg.QueueDepth = 2
	_, ts := newTestService(t, cfg)

	capacity := cfg.MaxRuns + cfg.QueueDepth
	var accepted []string
	var rejected int
	for i := 0; i < 2*capacity; i++ {
		code, doc, retry := submit(t, ts, longSpec)
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, doc["id"].(string))
		case http.StatusTooManyRequests:
			rejected++
			if retry == "" {
				t.Error("429 without Retry-After")
			}
		default:
			t.Fatalf("submission %d: status %d, want 202 or 429", i, code)
		}
	}
	if len(accepted) != capacity || rejected != capacity {
		t.Fatalf("accepted %d rejected %d, want %d each", len(accepted), rejected, capacity)
	}

	// The rejection is visible on the service metrics, and /healthz lives.
	if body := getBody(t, ts.URL+"/metrics"); !strings.Contains(body, "sprintd_runs_rejected_total "+itoa(rejected)) {
		t.Errorf("metrics lack the rejected counter:\n%s", grepLines(body, "sprintd_"))
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// Cancel everything: the running run lands in canceled within its
	// control period; queued runs cancel immediately and never start.
	for _, id := range accepted {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range accepted {
		waitState(t, ts, id, "canceled")
	}
}

// TestCancelRunningWithinControlPeriod is the DELETE acceptance check: a
// long running run is asked to stop and reaches "canceled" promptly; the
// cancellation is a no-op on terminal runs.
func TestCancelRunningWithinControlPeriod(t *testing.T) {
	_, ts := newTestService(t, defaultServerConfig())
	code, doc, _ := submit(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := doc["id"].(string)

	// Let it make real progress first.
	deadline := time.Now().Add(time.Minute)
	for {
		var status map[string]any
		getJSON(t, ts.URL+"/api/v1/runs/"+id+"/status", &status)
		if rows, ok := status["rows"].([]any); ok && len(rows) > 0 {
			if step := rows[0].(map[string]any)["step"].(float64); step > 10 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("run never progressed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/runs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running: %d, want 202", resp.StatusCode)
	}
	start := time.Now()
	final := waitState(t, ts, id, "canceled")
	if wall := time.Since(start); wall > 10*time.Second {
		t.Errorf("cancellation took %s", wall)
	}
	if final["error"] != nil {
		t.Errorf("canceled run carries error %v", final["error"])
	}

	// DELETE on a terminal run is a no-op reporting the state.
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	var doc2 map[string]string
	_ = json.NewDecoder(resp2.Body).Decode(&doc2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || doc2["state"] != "canceled" {
		t.Fatalf("second DELETE: %d %v", resp2.StatusCode, doc2)
	}
}

// TestPanicIsolationKeepsServing: an injected panic fails only its run —
// with the stack in the error — while the service stays live, counts the
// recovery, and executes the next run normally. Both isolation layers are
// exercised: the linked path panics on a row goroutine deep in the
// fan-out, the sweep path on the supervisor goroutine itself.
func TestPanicIsolationKeepsServing(t *testing.T) {
	_, ts := newTestService(t, defaultServerConfig())

	code, doc, _ := submit(t, ts, `{"rows": 1, "racks_per_row": 2, "duration_s": 240, "chaos_panic_at_step": 50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	final := waitState(t, ts, doc["id"].(string), "failed")
	errMsg, _ := final["error"].(string)
	if !strings.Contains(errMsg, "chaos: injected panic") || !strings.Contains(errMsg, "goroutine") {
		t.Fatalf("failed run error lacks panic value or stack: %.200s", errMsg)
	}

	code, doc, _ = submit(t, ts, `{"mode": "sweep", "rows": 1, "racks_per_row": 2, "duration_s": 240, "chaos_panic_at_step": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: %d", code)
	}
	waitState(t, ts, doc["id"].(string), "failed")

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after panics = %d", code)
	}
	if body := getBody(t, ts.URL+"/metrics"); !strings.Contains(body, "sprintd_panics_recovered_total 2") {
		t.Errorf("metrics lack the panic counter:\n%s", grepLines(body, "sprintd_"))
	}

	// The service still executes runs.
	code, doc, _ = submit(t, ts, `{"rows": 1, "racks_per_row": 2, "duration_s": 240}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-panic submit: %d", code)
	}
	waitState(t, ts, doc["id"].(string), "done")
}

// TestRetentionEvictsOldestStreams: beyond the retention cap the oldest
// completed runs lose their decision-stream buffers — 404 with an eviction
// cause — while their summaries stay queryable.
func TestRetentionEvictsOldestStreams(t *testing.T) {
	cfg := defaultServerConfig()
	cfg.Retain = 1
	_, ts := newTestService(t, cfg)

	var ids []string
	for i := 0; i < 2; i++ {
		code, doc, _ := submit(t, ts, `{"rows": 1, "racks_per_row": 2, "duration_s": 240}`)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		id := doc["id"].(string)
		waitState(t, ts, id, "done")
		ids = append(ids, id)
	}

	resp, err := http.Get(ts.URL + "/api/v1/runs/" + ids[0] + "/decisions?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(buf.String(), "evicted") {
		t.Fatalf("evicted run decisions: %d %s", resp.StatusCode, buf.String())
	}
	if code := getJSON(t, ts.URL+"/api/v1/runs/"+ids[1]+"/decisions?follow=0", nil); code != http.StatusOK {
		t.Fatalf("retained run decisions: %d", code)
	}
	var doc map[string]any
	getJSON(t, ts.URL+"/api/v1/runs/"+ids[0], &doc)
	if doc["state"] != "done" || doc["result"] == nil {
		t.Fatalf("evicted run lost its summary: %v", doc["state"])
	}
	if body := getBody(t, ts.URL+"/metrics"); !strings.Contains(body, "sprintd_runs_evicted_total 1") {
		t.Errorf("metrics lack the eviction counter:\n%s", grepLines(body, "sprintd_"))
	}
}

// TestDrainInterruptsAndRejects: drain stops admission (503), lets the
// grace expire, and lands in-flight runs in the resumable "interrupted"
// state.
func TestDrainInterruptsAndRejects(t *testing.T) {
	s, ts := newTestService(t, defaultServerConfig())
	code, doc, _ := submit(t, ts, longSpec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := doc["id"].(string)
	waitState(t, ts, id, "running")

	done := make(chan struct{})
	go func() { s.drain(50 * time.Millisecond); close(done) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var svc map[string]any
		getJSON(t, ts.URL+"/status", &svc)
		if svc["draining"] == true {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _, _ := submit(t, ts, longSpec); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("drain never returned")
	}
	if state := waitState(t, ts, id, "interrupted"); state["error"] != nil {
		t.Errorf("interrupted run carries error %v", state["error"])
	}
}

// TestSpecValidationTable: absurd and malformed specs are rejected with
// 400 and a cause that names the offending field.
func TestSpecValidationTable(t *testing.T) {
	_, ts := newTestService(t, defaultServerConfig())
	huge := `{"row_configs": [` + strings.Repeat(`{"racks": 1},`, 1100)
	huge = huge[:len(huge)-1] + `]}`
	cases := []struct {
		name, spec, want string
	}{
		{"negative rows", `{"rows": -1}`, "rows is -1"},
		{"huge rows", `{"rows": 4096}`, "at most 1024 rows"},
		{"negative racks per row", `{"racks_per_row": -2}`, "racks_per_row is -2"},
		{"negative duration", `{"duration_s": -5}`, "duration_s is -5"},
		{"negative chaos step", `{"chaos_panic_at_step": -1}`, "chaos_panic_at_step is -1"},
		{"oversized row_configs", huge, "at most 1024 rows"},
		{"zero-rack row", `{"row_configs": [{"racks": 0}]}`, "at least one"},
		{"negative row rating", `{"row_configs": [{"racks": 4, "rating_w": -10}]}`, "finite and non-negative"},
		{"underfunded building", `{"rows": 1, "racks_per_row": 4, "building_budget_w": 1}`, "cannot fund"},
		{"bad scenario document", `{"scenario": {"duration_s": -1}}`, "scenario"},
		{"bad mode", `{"mode": "turbo"}`, `mode \"turbo\"`},
		{"unknown field", `{"frequency_hz": 60}`, "unknown field"},
		{"malformed JSON", `{"rows": `, "decode spec"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(tc.spec))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%s: error %s lacks %q", tc.name, buf.String(), tc.want)
		}
	}
	// Nothing was admitted.
	var list map[string]any
	getJSON(t, ts.URL+"/api/v1/runs", &list)
	if runs := list["runs"].([]any); len(runs) != 0 {
		t.Fatalf("%d runs admitted by invalid specs", len(runs))
	}
}

// --- small helpers ---

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return buf.String()
}

// grepLines returns the lines of s containing the substring (test
// diagnostics).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
