package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sprintcon/internal/telemetry"
)

// newTestServer starts an in-memory service with the default
// configuration (no journal).
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := newServer(defaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts
}

func postRun(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, buf.String())
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc.ID
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var doc map[string]any
		if code := getJSON(t, ts.URL+"/api/v1/runs/"+id, &doc); code != http.StatusOK {
			t.Fatalf("run %s: status %d", id, code)
		}
		switch doc["state"] {
		case "done":
			return doc
		case "failed":
			t.Fatalf("run %s failed: %v", id, doc["error"])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish in time", id)
	return nil
}

// TestAPISmoke is the submit → stream → status round trip: a small linked
// run is submitted, its decision trace is streamed over chunked HTTP while
// the run executes, and the status endpoints serve live and final
// documents.
func TestAPISmoke(t *testing.T) {
	ts := newTestServer(t)

	id := postRun(t, ts, `{"rows": 2, "racks_per_row": 2, "duration_s": 240}`)

	// Stream the decision trace while the run executes: the response stays
	// open (chunked) until the run completes and the sink closes.
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/decisions?row=1&rack=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decisions: status %d", resp.StatusCode)
	}
	var decisions int
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var d telemetry.Decision
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("decision line %d: %v", decisions, err)
		}
		if d.Schema != telemetry.DecisionSchemaVersion {
			t.Fatalf("decision schema %d, want %d", d.Schema, telemetry.DecisionSchemaVersion)
		}
		decisions++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if decisions == 0 {
		t.Fatal("no decisions streamed")
	}

	doc := waitDone(t, ts, id)
	result, ok := doc["result"].(map[string]any)
	if !ok {
		t.Fatalf("done run carries no result: %v", doc)
	}
	if rows, ok := result["rows"].([]any); !ok || len(rows) != 2 {
		t.Fatalf("result rows = %v, want 2", result["rows"])
	}

	// Live status: every row must have reached the final step.
	var status map[string]any
	getJSON(t, ts.URL+"/api/v1/runs/"+id+"/status", &status)
	total := status["steps_total"].(float64)
	for i, row := range status["rows"].([]any) {
		if step := row.(map[string]any)["step"].(float64); step != total {
			t.Errorf("row %d step = %g, want %g", i, step, total)
		}
	}

	// Span trace and metrics are served per run.
	if code := getJSON(t, ts.URL+"/api/v1/runs/"+id+"/spans?row=0", nil); code != http.StatusOK {
		t.Errorf("spans: status %d", code)
	}
	mresp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	_, _ = mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"hier_building_exceed_frac", "hier_row1_budget_w", "obs_row0_rack1_trip_margin_p50"} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics exposition lacks %s", want)
		}
	}

	// Service-level documents.
	var svc map[string]any
	getJSON(t, ts.URL+"/status", &svc)
	if svc["service"] != "sprintd" {
		t.Errorf("/status service = %v", svc["service"])
	}
	var ch map[string]any
	if code := getJSON(t, ts.URL+"/status/cluster", &ch); code != http.StatusOK {
		t.Errorf("/status/cluster: status %d", code)
	} else if rows := ch["rows"].([]any); len(rows) != 2 {
		t.Errorf("/status/cluster rows = %d, want 2", len(rows))
	}
}

// TestAcceptance3Level is the acceptance topology: a building feeding four
// rows of sixteen racks runs under the service, streams decisions, and no
// level's shadow breaker sees an exceedance or a trip.
func TestAcceptance3Level(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rack service run skipped in -short mode")
	}
	ts := newTestServer(t)

	id := postRun(t, ts, `{"duration_s": 450}`) // defaults: linked, 4 rows × 16 racks
	doc := waitDone(t, ts, id)
	result := doc["result"].(map[string]any)
	if f := result["building_exceed_frac"].(float64); f != 0 {
		t.Errorf("building exceed frac = %g, want 0", f)
	}
	if n := result["building_trips"].(float64); n != 0 {
		t.Errorf("building trips = %g, want 0", n)
	}
	for i, row := range result["rows"].([]any) {
		m := row.(map[string]any)
		if f := m["exceed_frac"].(float64); f != 0 {
			t.Errorf("row %d exceed frac = %g, want 0", i, f)
		}
		if n := m["shadow_trips"].(float64); n != 0 {
			t.Errorf("row %d shadow trips = %g, want 0", i, n)
		}
	}

	// One decision stream spot check (non-follow replay after completion).
	resp, err := http.Get(ts.URL + "/api/v1/runs/" + id + "/decisions?row=3&rack=15&follow=0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if lines := strings.Count(buf.String(), "\n"); lines == 0 {
		t.Error("rack (3,15) streamed no decisions")
	}
}

// TestSubmitValidation: malformed and inconsistent specs are rejected with
// 400 before any run starts.
func TestSubmitValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []string{
		`{"mode": "nope"}`,
		`{"rows": 0, "racks_per_row": 0, "building_budget_w": 1}`, // cannot fund minimum packing
		`{"row_configs": [{"racks": -1}]}`,
		`{"unknown_field": true}`,
		`not json`,
	}
	for _, spec := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %d, want 400", spec, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/api/v1/runs/r99", nil); code != http.StatusNotFound {
		t.Errorf("missing run: status %d, want 404", code)
	}
}

// TestSweepMode: a sweep run completes, reports per-level records, and
// correctly declines decision/span queries.
func TestSweepMode(t *testing.T) {
	ts := newTestServer(t)
	id := postRun(t, ts, `{"mode": "sweep", "rows": 2, "racks_per_row": 4, "duration_s": 240}`)
	doc := waitDone(t, ts, id)
	result := doc["result"].(map[string]any)
	if rows := result["rows"].([]any); len(rows) != 2 {
		t.Fatalf("sweep rows = %d, want 2", len(rows))
	}
	if code := getJSON(t, ts.URL+"/api/v1/runs/"+id+"/decisions", nil); code != http.StatusNotFound {
		t.Errorf("sweep decisions: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/runs/"+id+"/spans", nil); code != http.StatusNotFound {
		t.Errorf("sweep spans: status %d, want 404", code)
	}
}
