package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sprintcon/internal/checkpoint"
)

// journal is sprintd's durable run record under -state-dir: one directory
// per run holding the spec/state record and, for linked runs, one framed
// checkpoint file per row. Every write is atomic (temp + rename), so a
// kill -9 at any instant leaves either the previous or the next intact
// version of each file — never a torn one. On startup the journal is
// replayed: terminal runs come back as queryable records, interrupted ones
// re-enter the admission queue and resume from their latest row snapshots
// (or from step 0 when none were captured — runs are deterministic, so a
// from-scratch re-execution reproduces the same result).
type journal struct {
	dir string
}

// journalRecord is the persisted lifecycle record of one run.
type journalRecord struct {
	ID        string         `json:"id"`
	Mode      string         `json:"mode"`
	State     string         `json:"state"`
	Submitted time.Time      `json:"submitted"`
	Started   time.Time      `json:"started"`
	Finished  time.Time      `json:"finished"`
	Error     string         `json:"error,omitempty"`
	Spec      RunSpec        `json:"spec"`
	Summary   map[string]any `json:"summary,omitempty"`
}

func newJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) runDir(id string) string { return filepath.Join(j.dir, "runs", id) }

// writeAtomic writes b to path via a temp file in the same directory.
func writeAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// saveRecord persists the run's lifecycle record.
func (j *journal) saveRecord(rec journalRecord) error {
	dir := j.runDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	b, err := json.MarshalIndent(rec, "", " ")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := writeAtomic(filepath.Join(dir, "record.json"), b); err != nil {
		return fmt.Errorf("journal: %s: %w", rec.ID, err)
	}
	return nil
}

// rowCkptMagic frames a coherent row-snapshot file: the magic, a big-endian
// rack count, then one length-prefixed checkpoint.Encode blob per rack.
// The whole set lands in one file so the per-rack snapshots can never be
// torn apart by a crash — the checkpoint encoding itself is versioned and
// checksummed, so any partial rename-loser is rejected on load.
const rowCkptMagic = "SPRDROW1"

// saveRowCheckpoint persists one row's coherent snapshot set.
func (j *journal) saveRowCheckpoint(id string, row int, snaps []*checkpoint.Snapshot) error {
	var buf []byte
	buf = append(buf, rowCkptMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(snaps)))
	for _, sp := range snaps {
		b, err := checkpoint.Encode(sp)
		if err != nil {
			return fmt.Errorf("journal: row checkpoint: %w", err)
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	path := filepath.Join(j.runDir(id), fmt.Sprintf("row%d.ckpt", row))
	if err := writeAtomic(path, buf); err != nil {
		return fmt.Errorf("journal: %s row %d: %w", id, row, err)
	}
	return nil
}

// loadRowCheckpoint reads one row's snapshot set ((nil, nil) when absent).
func (j *journal) loadRowCheckpoint(id string, row int) ([]*checkpoint.Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(j.runDir(id), fmt.Sprintf("row%d.ckpt", row)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if len(b) < len(rowCkptMagic)+4 || string(b[:len(rowCkptMagic)]) != rowCkptMagic {
		return nil, fmt.Errorf("journal: %s row %d: not a row checkpoint file", id, row)
	}
	b = b[len(rowCkptMagic):]
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	snaps := make([]*checkpoint.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("journal: %s row %d: truncated frame %d", id, row, i)
		}
		l := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < l {
			return nil, fmt.Errorf("journal: %s row %d: truncated snapshot %d", id, row, i)
		}
		sp, err := checkpoint.Decode(b[:l])
		if err != nil {
			return nil, fmt.Errorf("journal: %s row %d rack %d: %w", id, row, i, err)
		}
		snaps = append(snaps, sp)
		b = b[l:]
	}
	return snaps, nil
}

// loadResume assembles a run's per-row resume sets, best-effort: a row
// without a usable checkpoint file resumes from step 0 (nil entry), which
// is always correct — the simulation is deterministic — just slower.
func (j *journal) loadResume(id string, rows int) [][]*checkpoint.Snapshot {
	out := make([][]*checkpoint.Snapshot, rows)
	any := false
	for r := 0; r < rows; r++ {
		snaps, err := j.loadRowCheckpoint(id, r)
		if err != nil || len(snaps) == 0 {
			continue
		}
		// Coherence within the file is structural (one atomic write), but
		// verify anyway: incoherent sets resume from scratch.
		ok := true
		for _, sp := range snaps {
			if sp.Step != snaps[0].Step {
				ok = false
				break
			}
		}
		if ok {
			out[r] = snaps
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// load replays the journal: every run record, ordered by numeric run id.
func (j *journal) load() ([]journalRecord, error) {
	entries, err := os.ReadDir(filepath.Join(j.dir, "runs"))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var recs []journalRecord
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(j.runDir(e.Name()), "record.json"))
		if err != nil {
			// A run directory without a record is a crash between MkdirAll
			// and the first record write; nothing to recover.
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("journal: %s: %w", e.Name(), err)
		}
		if rec.ID == "" {
			rec.ID = e.Name()
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(a, b int) bool { return runSeq(recs[a].ID) < runSeq(recs[b].ID) })
	return recs, nil
}

// runSeq extracts the numeric sequence from a run id ("r12" → 12).
func runSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "r"))
	return n
}
