package main

import (
	"bytes"
	"testing"

	"sprintcon/internal/checkpoint"
	"sprintcon/internal/core"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

// grabStore retains the first snapshot at or after a target simulation time
// (what an operator gets by copying the checkpoint file mid-run — Save
// replaces it atomically, so any copy is a valid snapshot).
type grabStore struct {
	at float64
	sp *checkpoint.Snapshot
}

func (g *grabStore) Save(s *checkpoint.Snapshot) (int, error) {
	if g.sp == nil && s.SimTimeS >= g.at {
		cp := *s
		g.sp = &cp
	}
	return 0, nil
}
func (g *grabStore) Latest() (*checkpoint.Snapshot, error) { return g.sp, nil }

// TestDiffReplay drives the -replay pipeline end to end: record a full
// run's decision trace, resume a second run from a mid-run snapshot, and
// require diffReplay to pass the matching continuation and fail a tampered
// one.
func TestDiffReplay(t *testing.T) {
	scn := sim.DefaultScenario()
	store := &grabStore{at: 450}
	var recordedBuf bytes.Buffer
	if _, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{
		Metrics:    telemetry.NewRegistry(),
		Decisions:  telemetry.NewDecisionSink(&recordedBuf),
		Checkpoint: &sim.CheckpointOptions{Store: store},
	}); err != nil {
		t.Fatal(err)
	}
	if store.sp == nil {
		t.Fatal("no mid-run snapshot captured")
	}
	recorded, err := telemetry.ReadDecisions(bytes.NewReader(recordedBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var replayBuf bytes.Buffer
	if _, err := sim.RunWith(scn, core.New(core.DefaultConfig()), sim.RunOptions{
		Metrics:   telemetry.NewRegistry(),
		Decisions: telemetry.NewDecisionSink(&replayBuf),
		Resume:    store.sp,
	}); err != nil {
		t.Fatal(err)
	}

	if err := diffReplay(recorded, &replayBuf); err != nil {
		t.Fatalf("faithful replay reported divergence: %v", err)
	}

	// A tampered recorded trace must be flagged.
	tampered := append([]telemetry.Decision(nil), recorded...)
	tampered[len(tampered)-1].Mode = "impossible"
	if err := diffReplay(tampered, &replayBuf); err == nil {
		t.Fatal("diffReplay accepted a tampered trace")
	}
}
