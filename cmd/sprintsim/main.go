// Command sprintsim runs one sprinting scenario under a chosen policy and
// prints a summary plus (optionally) the per-tick time series as CSV.
//
// Usage:
//
//	sprintsim -policy sprintcon -deadline 720 -duration 900 [-csv out.csv]
//	sprintsim -policy sgct-v2 -fault ups-path-failure:100:500 -events
//	sprintsim -trace-jsonl decisions.jsonl -metrics-addr :9090 -hold
//	sprintsim -racks 4 -link -fault link-partition:10:690:1:0
//
// Policies: sprintcon, sprintcon-pi, sgct, sgct-v1, sgct-v2.
// The repeatable -fault flag injects runtime faults
// (kind:onset:duration[:severity[:server]]); -unhardened strips SprintCon's
// defenses to reproduce the paper-faithful fault-oblivious controller.
//
// Cluster mode: -racks N runs a feeder group of N SprintCon racks; -link
// puts the lease-based coordinator↔rack control link in the loop
// (DESIGN.md §12), which unlocks the link-scoped fault kinds
// (link-loss, link-delay, link-dup, link-partition, coordinator-crash);
// -naive-link swaps in the always-trust-last-grant strawman client and
// -feeder-budget overrides the feeder provisioning. Cluster mode prints a
// feeder/link summary; with -link it also takes -trace-spans and
// -metrics-addr (which adds a /status/cluster health document), but not the
// single-rack checkpoint/CSV/decision-trace flags.
//
// Observability: -trace-jsonl streams one structured decision record per
// control period; -trace-spans records the causal span trace (lease
// lifecycle, control periods) as JSONL and prints the anomaly detectors'
// alerts — -read-spans pretty-prints a recorded trace as a causal tree;
// -metrics-addr serves Prometheus /metrics, a /status JSON snapshot of the
// running simulation and net/http/pprof; -cpuprofile and -memprofile write
// pprof profiles of the run itself.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"sprintcon/internal/baseline"
	"sprintcon/internal/checkpoint"
	"sprintcon/internal/cluster"
	"sprintcon/internal/core"
	"sprintcon/internal/faults"
	"sprintcon/internal/obs"
	"sprintcon/internal/seriesio"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
	"sprintcon/internal/workload"
)

// faultList collects repeated -fault flags into a fault plan.
type faultList struct {
	plan faults.Plan
}

func (l *faultList) String() string {
	if l == nil || l.plan.Empty() {
		return ""
	}
	return fmt.Sprintf("%d faults", len(l.plan.Faults))
}

func (l *faultList) Set(spec string) error {
	f, err := faults.Parse(spec)
	if err != nil {
		return err
	}
	l.plan.Faults = append(l.plan.Faults, f)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sprintsim: ")

	var (
		policyName = flag.String("policy", "sprintcon", "policy: sprintcon, sprintcon-pi, nosprint, sgct, sgct-v1, sgct-v2")
		deadline   = flag.Float64("deadline", 720, "batch deadline in seconds")
		duration   = flag.Float64("duration", 900, "sprint duration in seconds")
		csvPath    = flag.String("csv", "", "write the per-tick time series to this CSV file")
		seed       = flag.Int64("seed", 1, "interactive trace seed")
		jobs       = flag.Bool("jobs", false, "print per-job completion details")
		events     = flag.Bool("events", false, "print the run's structured event log")
		tracePath  = flag.String("trace", "", "replay an interactive demand trace from this CSV (time_s,demand_frac)")
		scenPath   = flag.String("scenario", "", "load the scenario from this JSON file (see -dump-scenario)")
		dumpScen   = flag.Bool("dump-scenario", false, "print the default scenario as JSON and exit")
		unhardened = flag.Bool("unhardened", false, "disable SprintCon's fault defenses (paper-faithful controller)")

		ckptPath  = flag.String("checkpoint", "", "persist control-state checkpoints to this file (atomic temp+rename)")
		ckptEvery = flag.Float64("checkpoint-every", 0, "checkpoint cadence in simulated seconds (0 = every tick)")
		restore   = flag.Bool("restore", false, "resume the run from the snapshot in -checkpoint instead of starting fresh")
		replay    = flag.String("replay", "", "re-drive the run from the -checkpoint snapshot and diff its decisions against this recorded -trace-jsonl file")

		racks        = flag.Int("racks", 0, "cluster mode: run this many racks on one feeder (0 = single rack)")
		linkOn       = flag.Bool("link", false, "cluster mode: run the lease-based control link instead of static phase offsets")
		naiveLink    = flag.Bool("naive-link", false, "cluster mode: always-trust-last-grant client (unsafe baseline; needs -link)")
		feederBudget = flag.Float64("feeder-budget", 0, "cluster mode: feeder budget in W (0 = rated sum plus funded overload slots)")
		linkSeed     = flag.Int64("link-seed", 0, "cluster mode: transport fault-randomness seed")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, /status JSON, /status/obs health and /debug/pprof on this address (e.g. :9090)")
		traceJSONL  = flag.String("trace-jsonl", "", "write one JSON decision record per control period to this file")
		traceSpans  = flag.String("trace-spans", "", "write the run's causal span trace (JSONL) to this file; enables the observability plane")
		readSpans   = flag.String("read-spans", "", "print a recorded span trace as an indented causal tree and exit")
		holdServer  = flag.Bool("hold", false, "with -metrics-addr: keep serving after the run until interrupted")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	var flist faultList
	flag.Var(&flist, "fault", "inject a fault, kind:onset:duration[:severity[:server]] (repeatable); kinds: "+kindList())
	flag.Parse()

	if *dumpScen {
		if err := sim.DefaultScenario().WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *readSpans != "" {
		f, err := os.Open(*readSpans)
		if err != nil {
			log.Fatal(err)
		}
		spans, err := telemetry.ReadSpans(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		telemetry.FormatSpanTree(os.Stdout, spans)
		return
	}

	scn := sim.DefaultScenario()
	if *scenPath != "" {
		f, err := os.Open(*scenPath)
		if err != nil {
			log.Fatal(err)
		}
		scn, err = sim.ScenarioFromJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		scn.DurationS = *duration
		scn.BurstDurationS = *duration
		scn.BatchDeadlineS = *deadline
		scn.Interactive.Seed = *seed
		scn.Interactive.BurstEndS = *duration
	}
	if !flist.plan.Empty() {
		scn.Faults = flist.plan
	}
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := workload.TraceFromCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		scn.Trace = tr
	}

	if *racks > 0 {
		if *csvPath != "" || *ckptPath != "" || *replay != "" || *traceJSONL != "" {
			log.Fatal("cluster mode (-racks) does not take -csv, -checkpoint, -replay or -trace-jsonl")
		}
		if (*metricsAddr != "" || *traceSpans != "") && !*linkOn {
			log.Fatal("cluster-mode -metrics-addr and -trace-spans ride the control link: give -link")
		}
		if *policyName != "sprintcon" {
			log.Fatalf("cluster mode runs the sprintcon policy per rack; -policy %s is single-rack only", *policyName)
		}
		runCluster(scn, *racks, *linkOn, *naiveLink, *feederBudget, *linkSeed, *unhardened,
			*traceSpans, *metricsAddr, *holdServer)
		return
	}
	if *linkOn || *naiveLink {
		log.Fatal("-link and -naive-link need cluster mode: give -racks")
	}

	policy, err := policyByName(*policyName, *unhardened)
	if err != nil {
		log.Fatal(err)
	}

	// Telemetry wiring: everything below is opt-in and nil when unused, so
	// a plain run carries no instrumentation cost.
	var opts sim.RunOptions
	if *metricsAddr != "" || *traceJSONL != "" || *replay != "" {
		opts.Metrics = telemetry.NewRegistry()
	}
	var plane *obs.Plane
	if *traceSpans != "" || *metricsAddr != "" {
		plane = obs.NewPlane(0, obs.DefaultDetectorConfig())
		opts.Obs = plane
		if opts.Metrics != nil {
			plane.Bind(opts.Metrics, "obs_rack0_")
		}
	}

	// Crash safety: -checkpoint persists snapshots, -restore resumes from
	// the latest one (and keeps checkpointing over it, the crash-recovery
	// loop), -replay resumes and diffs the continuation's decisions
	// against a recorded trace instead of trusting it blindly.
	if *replay != "" && *traceJSONL != "" {
		log.Fatal("-replay records its own decision trace; drop -trace-jsonl")
	}
	if (*restore || *replay != "") && *ckptPath == "" {
		log.Fatal("-restore and -replay resume from a snapshot: give its file with -checkpoint")
	}
	if *restore || *replay != "" {
		sp, err := checkpoint.ReadFile(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Resume = sp
		fmt.Printf("resuming from %s (t=%.0f s, step %d)\n", *ckptPath, sp.SimTimeS, sp.Step)
	}
	if *ckptPath != "" && *replay == "" {
		opts.Checkpoint = &sim.CheckpointOptions{
			Store:  checkpoint.NewFileStore(*ckptPath),
			EveryS: *ckptEvery,
		}
	}
	var replayBuf *bytes.Buffer
	var recorded []telemetry.Decision
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		recorded, err = telemetry.ReadDecisions(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		replayBuf = &bytes.Buffer{}
		opts.Decisions = telemetry.NewDecisionSink(replayBuf)
	}
	var traceFile *os.File
	if *traceJSONL != "" {
		traceFile, err = os.Create(*traceJSONL)
		if err != nil {
			log.Fatal(err)
		}
		opts.Decisions = telemetry.NewDecisionSink(traceFile)
	}
	var stopServer func() error
	if *metricsAddr != "" {
		opts.Status = telemetry.NewRunStatus()
		var extra []telemetry.Endpoint
		if plane != nil {
			extra = append(extra, telemetry.Endpoint{Path: "/status/obs", Doc: func() any { return plane.Snapshot() }})
		}
		bound, stop, err := telemetry.Serve(*metricsAddr, telemetry.Handler(opts.Metrics, opts.Status, extra...))
		if err != nil {
			log.Fatal(err)
		}
		stopServer = stop
		fmt.Printf("serving /metrics, /status, /debug/pprof on http://%s\n", bound)
	}
	stopCPUProfile := func() error { return nil }
	if *cpuProfile != "" {
		stopCPUProfile, err = telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
	}

	res, err := sim.RunWith(scn, policy, opts)
	// The profile covers the run only, not report writing or -hold idling.
	if perr := stopCPUProfile(); perr != nil {
		log.Print(perr)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			log.Fatal(err)
		}
	}

	if traceFile != nil {
		// Surface sink write errors and the Close error: a silently
		// truncated trace is worse than no trace.
		if err := opts.Decisions.Err(); err != nil {
			log.Fatalf("decision trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatalf("decision trace: %v", err)
		}
		fmt.Printf("decision trace (%d records) written to %s\n", opts.Decisions.Count(), *traceJSONL)
	}

	if replayBuf != nil {
		if err := diffReplay(recorded, replayBuf); err != nil {
			log.Fatal(err)
		}
	}
	if plane != nil {
		if *traceSpans != "" {
			if err := writeSpanFile(*traceSpans, plane.Spans()); err != nil {
				log.Fatal(err)
			}
		}
		printAlerts(plane.Alerts())
	}

	printSummary(res)
	if *events {
		for _, e := range res.Events {
			fmt.Println(" ", e)
		}
	}
	if *jobs {
		for _, j := range res.Jobs {
			status := "ok"
			if j.Missed {
				status = "MISSED"
			}
			fmt.Printf("  %-14s %-8s done=%7.1fs progress=%.2f %s\n",
				j.Name, j.Core, j.CompletionS, j.Progress, status)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		werr := seriesio.WriteCSV(f, &res.Series)
		// Close is checked before claiming success: WriteCSV flushes
		// through buffers whose write errors can surface only at Close,
		// and a deferred Close would have discarded them.
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
		fmt.Printf("time series written to %s\n", *csvPath)
	}

	if stopServer != nil {
		if *holdServer {
			fmt.Println("run finished; still serving (interrupt to exit)")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
		if err := stopServer(); err != nil {
			log.Print(err)
		}
	}
}

// diffReplay compares the decisions a resumed run produced against the
// tail of the recorded trace. Records are aligned by the first replayed
// decision's timestamp: the decision pending at the snapshot boundary is
// emitted one control period later in the original run but is not part of
// the restored state, so up to one recorded boundary record has no replay
// counterpart and is skipped (and reported). From there, every record must
// match byte for byte as canonical JSON.
func diffReplay(recorded []telemetry.Decision, buf *bytes.Buffer) error {
	replayed, err := telemetry.ReadDecisions(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return fmt.Errorf("replay trace: %w", err)
	}
	if len(replayed) == 0 {
		return fmt.Errorf("replay produced no decisions; the snapshot may be from the end of the run")
	}
	start := replayed[0].T
	var tail []telemetry.Decision
	for _, d := range recorded {
		if d.T >= start-1e-9 {
			tail = append(tail, d)
		}
	}
	n := len(tail)
	if len(replayed) < n {
		n = len(replayed)
	}
	for i := 0; i < n; i++ {
		a, err := json.Marshal(tail[i])
		if err != nil {
			return err
		}
		b, err := json.Marshal(replayed[i])
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("replay diverged at decision %d (t=%.0f s):\n recorded: %s\n replayed: %s", i, tail[i].T, a, b)
		}
	}
	if len(tail) != len(replayed) {
		return fmt.Errorf("replay produced %d decisions, recorded trace has %d from t=%.0f s", len(replayed), len(tail), start)
	}
	fmt.Printf("replay: %d decisions from t=%.0f s match the recorded trace (%d earlier records outside the replayed window)\n",
		len(replayed), start, len(recorded)-len(tail))
	return nil
}

// writeSpanFile persists a span trace as JSONL and reports the count.
func writeSpanFile(path string, spans []telemetry.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := telemetry.WriteSpans(f, spans)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("span trace: %w", werr)
	}
	fmt.Printf("span trace (%d spans) written to %s (inspect with -read-spans)\n", len(spans), path)
	return nil
}

// printAlerts lists the anomaly detectors' structured alerts.
func printAlerts(alerts []obs.Alert) {
	if len(alerts) == 0 {
		fmt.Println("alerts:               none")
		return
	}
	fmt.Printf("alerts:               %d\n", len(alerts))
	for _, a := range alerts {
		span := ""
		if a.SpanID != 0 {
			span = fmt.Sprintf(" span=%d", a.SpanID)
		}
		fmt.Printf("  [t=%4.0fs] rack %d %s: %s%s\n", a.AtS, a.Rack, a.Detector, a.Detail, span)
	}
}

// runCluster executes the multi-rack feeder group: the static phase-offset
// schedule by default, the lease-based control link with -link. The feeder
// budget defaults to the provisioning rule of cluster.DefaultConfig scaled
// to the group — every rack's rated draw plus ⌈N·overload/cycle⌉ funded
// overload bonuses.
func runCluster(scn sim.Scenario, n int, linkOn, naive bool, budgetW float64, linkSeed int64, unhardened bool,
	traceSpans, metricsAddr string, hold bool) {
	cfg := cluster.DefaultConfig()
	cfg.NumRacks = n
	cfg.Scenario = scn
	cfg.SprintCon.Harden.Disabled = unhardened
	if budgetW > 0 {
		cfg.FeederBudgetW = budgetW
	} else {
		rated := scn.Breaker.RatedPower
		slots := (n + 2) / 3 // ⌈N·150/450⌉ for the default schedule
		cfg.FeederBudgetW = float64(n)*rated + 0.25*rated*float64(slots)
	}

	if !linkOn {
		res, err := cluster.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		printClusterSummary(&cfg, res, nil)
		return
	}

	cfg.Link.Enabled = true
	cfg.Link.NaiveTrustLastGrant = naive
	cfg.Link.Seed = linkSeed

	// The observability plane rides the link: spans need the lease grant IDs
	// and the health rollups need the per-rack planes RunLinked attaches.
	var oc *obs.Cluster
	if traceSpans != "" || metricsAddr != "" {
		oc = obs.NewCluster(cfg.NumRacks, obs.DefaultDetectorConfig())
		cfg.Link.Obs = oc
	}
	var stopServer func() error
	if metricsAddr != "" {
		reg := telemetry.NewRegistry()
		cfg.Link.Metrics = reg
		for i, p := range oc.Racks {
			p.Bind(reg, fmt.Sprintf("obs_rack%d_", i))
		}
		bound, stop, err := telemetry.Serve(metricsAddr, telemetry.Handler(reg, nil,
			telemetry.Endpoint{Path: "/status/cluster", Doc: oc.Doc}))
		if err != nil {
			log.Fatal(err)
		}
		stopServer = stop
		fmt.Printf("serving /metrics, /status/cluster, /debug/pprof on http://%s\n", bound)
	}

	res, err := cluster.RunLinked(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if traceSpans != "" {
		if err := writeSpanFile(traceSpans, oc.Spans()); err != nil {
			log.Fatal(err)
		}
	}
	printClusterSummary(&cfg, &res.Result, res)
	if oc != nil {
		printAlerts(oc.Alerts())
	}
	if stopServer != nil {
		if hold {
			fmt.Println("run finished; still serving (interrupt to exit)")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt)
			<-ch
		}
		if err := stopServer(); err != nil {
			log.Print(err)
		}
	}
}

func printClusterSummary(cfg *cluster.Config, res *cluster.Result, linked *cluster.LinkedResult) {
	mode := "static offsets"
	if linked != nil {
		mode = "control link"
		if cfg.Link.NaiveTrustLastGrant {
			mode = "control link (naive trust-last-grant)"
		}
	}
	fmt.Printf("racks:                %d (%s)\n", cfg.NumRacks, mode)
	fmt.Printf("feeder budget:        %.0f W\n", cfg.FeederBudgetW)
	fmt.Printf("aggregate peak/mean:  %.0f / %.0f W\n", res.PeakW, res.MeanW)
	fmt.Printf("over budget:          %.2f %% of ticks\n", 100*res.OverBudgetFrac)
	fmt.Printf("CB trips:             %d\n", res.CBTrips)
	fmt.Printf("outage:               %.0f s\n", res.OutageS)
	fmt.Printf("deadline misses:      %d\n", res.DeadlineMisses)
	if linked != nil {
		fmt.Printf("feeder exceedance:    %.2f %% of ticks (beyond tracking tolerance)\n", 100*linked.FeederExceedFrac)
		fmt.Printf("feeder trips:         %d\n", linked.FeederTrips)
		fmt.Printf("degraded:             %.0f rack-seconds (resyncs: %d)\n", linked.DegradedS(), linked.Resyncs())
		tr := linked.Transport
		fmt.Printf("grants sent/lost:     %d / %d (dup extras: %d)\n",
			tr.GrantsSent, tr.GrantsLost+tr.GrantsPartition, tr.GrantsDuped)
		fmt.Printf("beats sent/lost:      %d / %d\n", tr.BeatsSent, tr.BeatsLost+tr.BeatsPartition)
		fmt.Printf("coordinator:          %d grants, %d probes, %d repacks, %d presumed-degraded\n",
			linked.Coord.Grants, linked.Coord.Probes, linked.Coord.Repacks, linked.Coord.Presumed)
	}
	for i, r := range res.Racks {
		line := fmt.Sprintf("  rack %d: trips=%d outage=%.0fs misses=%d avg_fi=%.3f avg_fb=%.3f",
			i, r.CBTrips, r.OutageS, r.DeadlineMisses, r.AvgFreqInter, r.AvgFreqBatch)
		if linked != nil {
			c := linked.Clients[i]
			line += fmt.Sprintf(" degraded=%.0fs resyncs=%d", c.DegradedS, c.Resyncs)
		}
		fmt.Println(line)
	}
}

func kindList() string {
	var s string
	for i, k := range faults.Kinds() {
		if i > 0 {
			s += ", "
		}
		s += string(k)
	}
	return s
}

func policyByName(name string, unhardened bool) (sim.Policy, error) {
	cfg := core.DefaultConfig()
	cfg.Harden.Disabled = unhardened
	switch name {
	case "sprintcon":
		return core.New(cfg), nil
	case "sprintcon-pi":
		cfg.Controller = core.ControllerPI
		return core.New(cfg), nil
	case "nosprint":
		cfg.NoSprint = true
		return core.New(cfg), nil
	case "sgct":
		return baseline.New(baseline.SGCT), nil
	case "sgct-v1":
		return baseline.New(baseline.SGCTV1), nil
	case "sgct-v2":
		return baseline.New(baseline.SGCTV2), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func printSummary(r *sim.Result) {
	fmt.Printf("policy:               %s\n", r.Policy)
	fmt.Printf("avg freq interactive: %.3f\n", r.AvgFreqInter)
	fmt.Printf("avg freq batch:       %.3f\n", r.AvgFreqBatch)
	fmt.Printf("CB trips:             %d\n", r.CBTrips)
	fmt.Printf("outage:               %.0f s\n", r.OutageS)
	fmt.Printf("UPS DoD:              %.1f %%\n", 100*r.UPSDoD)
	fmt.Printf("UPS discharged:       %.1f Wh\n", r.UPSDischargedWh)
	fmt.Printf("jobs completed:       %d/%d (deadline misses: %d)\n",
		r.JobsCompletedOnce, r.JobsTotal, r.DeadlineMisses)
	fmt.Printf("normalized time use:  %.3f\n", r.NormalizedTimeUse())
	fmt.Printf("CB over budget:       %.2f %% of controlled ticks\n", 100*r.CBOverBudgetFrac)
	fmt.Printf("CB tracking error:    %.1f W\n", r.CBTrackingErrorW)
	fmt.Printf("energy total/CB/over: %.0f / %.0f / %.0f Wh\n",
		r.EnergyTotalWh, r.EnergyCBWh, r.EnergyCBOverWh)
}
