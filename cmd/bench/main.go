// Command bench runs SprintCon's pinned performance scenarios and writes a
// BENCH_<date>.json data point, so the repository's performance trajectory
// is measured, not asserted. It optionally compares the run against a
// committed baseline and exits non-zero on regression (the CI bench-check
// job).
//
// Scenarios:
//
//	qp_warm_vs_cold — MPC-shaped box QP, cold solve vs warm re-solve of a
//	                  perturbed problem (sweeps are deterministic)
//	tick_loop       — steady-state SprintCon tick: allocations per tick
//	                  (must be 0 with telemetry off) and ns/tick
//	trace_overhead  — the same tick loop with the observability plane
//	                  detached vs attached: allocations per tick (must stay
//	                  0 detached) and the on/off wall-time ratio
//	mpc_sweeps      — mean QP sweeps per MPC solve over the default
//	                  closed-loop run, warm vs the pre-optimization
//	                  legacy path
//	event_engine    — single-rack diurnal power-capping run under the
//	                  discrete-event engine vs the tick engine: bitwise
//	                  identity, the in-process speedup, the fraction of
//	                  plant ticks closed analytically, and the marginal
//	                  heap allocations per discrete event (must be 0 in
//	                  steady state)
//	cluster_sweep   — 1000-rack day-long stepped-diurnal fleet under the
//	                  event engine (the tentpole scale scenario): wall
//	                  time of the fleet, serial tick vs serial event on a
//	                  rack subset (the ≥10× engine speedup), and a
//	                  bit-identical check between the engines at every
//	                  control period
//	cluster_link    — fault-free linked run (RunLinked) vs the static
//	                  phase-offset run: the control link's stepping
//	                  overhead, a parallel-vs-serial bit-identical check,
//	                  and the degraded-mode seconds (must stay zero with
//	                  no faults on the wire)
//	cluster_hier    — hierarchical building run (internal/hier): linked
//	                  rows parallel vs serial bit-identity, the sharded
//	                  static sweep's bit-identity and speedup, and the
//	                  per-level shadow-breaker record (must stay zero on
//	                  a clean network)
//
// Metric comparison rules against the baseline: deterministic metrics
// (allocs_per_tick, allocs_per_event, bit_identical, *_sweeps*) are held to
// tight bounds; in-process speedup ratios (speedup_*) may not drop more
// than 20%; wall-clock metrics (*_ns) are informational unless -wall is
// given, since absolute times are machine-dependent. Every scenario records
// the GOMAXPROCS it ran under, and comparisons for a scenario are refused
// (with a warning) when it differs from the baseline's — parallel-path
// ratios measured at different core counts are not comparable.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"sprintcon/internal/cluster"
	"sprintcon/internal/core"
	"sprintcon/internal/hier"
	"sprintcon/internal/mathx"
	"sprintcon/internal/obs"
	"sprintcon/internal/qp"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
	"sprintcon/internal/workload"
)

const schemaVersion = "sprintcon-bench/v1"

// Scenario is one benchmark's result: a flat name → value metric map, plus
// the GOMAXPROCS it ran under (parallel-path ratios depend on it, so the
// comparator refuses cross-core-count comparisons).
type Scenario struct {
	Name       string             `json:"name"`
	GOMAXPROCS int                `json:"gomaxprocs,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH_<date>.json document.
type Report struct {
	Schema     string     `json:"schema"`
	Date       string     `json:"date"`
	Go         string     `json:"go"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Quick      bool       `json:"quick"`
	Scenarios  []Scenario `json:"scenarios"`
}

func main() {
	quick := flag.Bool("quick", false, "shorter scenarios for CI (compare only against a -quick baseline)")
	baselinePath := flag.String("baseline", "auto",
		"baseline JSON to compare against; \"auto\" picks bench/baseline-quick.json with -quick, bench/baseline.json otherwise (empty to skip)")
	out := flag.String("o", "", "output path (default BENCH_<date>.json)")
	wall := flag.Bool("wall", false, "also enforce wall-clock (_ns) comparisons against the baseline")
	flag.Parse()

	rep := Report{
		Schema:     schemaVersion,
		Date:       time.Now().Format("2006-01-02"),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	fmt.Println("bench: qp_warm_vs_cold")
	rep.Scenarios = append(rep.Scenarios, qpWarmVsCold())
	fmt.Println("bench: tick_loop")
	rep.Scenarios = append(rep.Scenarios, tickLoop(*quick))
	fmt.Println("bench: trace_overhead")
	rep.Scenarios = append(rep.Scenarios, traceOverhead(*quick))
	fmt.Println("bench: mpc_sweeps")
	rep.Scenarios = append(rep.Scenarios, mpcSweeps(*quick))
	fmt.Println("bench: event_engine")
	rep.Scenarios = append(rep.Scenarios, eventEngine(*quick))
	fmt.Println("bench: cluster_sweep")
	rep.Scenarios = append(rep.Scenarios, clusterSweep(*quick))
	fmt.Println("bench: cluster_link")
	rep.Scenarios = append(rep.Scenarios, clusterLink(*quick))
	fmt.Println("bench: cluster_hier")
	rep.Scenarios = append(rep.Scenarios, clusterHier(*quick))

	for i := range rep.Scenarios {
		rep.Scenarios[i].GOMAXPROCS = rep.GOMAXPROCS
	}

	for _, s := range rep.Scenarios {
		fmt.Printf("%s:\n", s.Name)
		for _, k := range sortedKeys(s.Metrics) {
			fmt.Printf("  %-28s %v\n", k, s.Metrics[k])
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: wrote %s\n", path)

	bp := *baselinePath
	if bp == "auto" {
		if *quick {
			bp = "bench/baseline-quick.json"
		} else {
			bp = "bench/baseline.json"
		}
	}
	if bp != "" {
		if code := compare(rep, bp, *wall); code != 0 {
			os.Exit(code)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(2)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

// qpWarmVsCold re-solves a perturbed MPC-shaped QP warm vs cold. Sweep
// counts are fully deterministic.
func qpWarmVsCold() Scenario {
	const n = 64
	h := mathx.NewMatrix(n, n)
	k := mathx.NewVector(n)
	for i := range k {
		k[i] = 9 + 0.1*float64(i%7)
	}
	h.OuterAdd(30, k, k)
	g := mathx.NewVector(n)
	lo := mathx.NewVector(n)
	hi := mathx.NewVector(n)
	for i := 0; i < n; i++ {
		h.Inc(i, i, 400)
		g[i] = -(4000 + 2500*float64(i%5)) * k[i]
		lo[i] = -1.6
		hi[i] = 0.4
	}
	p := qp.Problem{H: h, G: g, Lo: lo, Hi: hi}

	base, err := qp.Solve(p, qp.Options{MaxSweeps: 10000})
	if err != nil {
		fatal(err)
	}
	pert := p
	pert.G = g.Clone()
	for i := range pert.G {
		pert.G[i] *= 1.01
	}
	t0 := time.Now()
	cold, err := qp.Solve(pert, qp.Options{MaxSweeps: 10000})
	coldNs := time.Since(t0)
	if err != nil {
		fatal(err)
	}
	ws := qp.NewWorkspace(n)
	t0 = time.Now()
	warm, err := qp.Solve(pert, qp.Options{MaxSweeps: 10000, Warm: base.X, Ws: ws})
	warmNs := time.Since(t0)
	if err != nil {
		fatal(err)
	}
	return Scenario{Name: "qp_warm_vs_cold", Metrics: map[string]float64{
		"cold_sweeps":     float64(cold.Sweeps),
		"warm_sweeps":     float64(warm.Sweeps),
		"sweep_reduction": float64(cold.Sweeps) / math.Max(1, float64(warm.Sweeps)),
		"cold_ns":         float64(coldNs.Nanoseconds()),
		"warm_ns":         float64(warmNs.Nanoseconds()),
	}}
}

// tickLoop measures the steady-state SprintCon tick with telemetry off:
// allocations per tick (the zero-alloc contract) and wall time per tick.
func tickLoop(quick bool) Scenario {
	scn := sim.DefaultScenario()
	env, err := sim.BuildEnv(scn)
	if err != nil {
		fatal(err)
	}
	s := core.New(core.DefaultConfig())
	if err := s.Start(env, scn); err != nil {
		fatal(err)
	}
	snap := sim.Snapshot{Dt: scn.DtS, UPSSoC: env.UPS.SoC()}
	now := 0.0
	tick := func() {
		snap.Now = now
		snap.MeasuredTotalW = env.Rack.MeasuredPower()
		snap.CBPowerW = env.Rack.TruePower()
		s.Tick(env, snap)
		env.Rack.AdvanceBatch(scn.DtS, now)
		now += scn.DtS
	}
	for i := 0; i < 120; i++ {
		tick() // steady state: caches warm, buffers at capacity
	}
	n := 600
	if quick {
		n = 200
	}
	allocs := testing.AllocsPerRun(n, tick)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		tick()
	}
	wall := time.Since(t0)
	return Scenario{Name: "tick_loop", Metrics: map[string]float64{
		"allocs_per_tick": allocs,
		"ns_per_tick":     float64(wall.Nanoseconds()) / float64(n),
	}}
}

// traceOverhead measures what the observability plane costs on the tick
// path: the same steady-state loop as tick_loop, once with the plane
// disabled (a nil *obs.Plane — the tick must stay allocation-free) and once
// attached (span events, rollup pushes and detectors live). The on/off wall
// ratio is trace_overhead; both sides run in the same process, so the ratio
// survives machine changes.
func traceOverhead(quick bool) Scenario {
	run := func(plane *obs.Plane) (allocs, nsPerTick float64) {
		scn := sim.DefaultScenario()
		env, err := sim.BuildEnv(scn)
		if err != nil {
			fatal(err)
		}
		env.Obs = plane
		s := core.New(core.DefaultConfig())
		if err := s.Start(env, scn); err != nil {
			fatal(err)
		}
		snap := sim.Snapshot{Dt: scn.DtS, UPSSoC: env.UPS.SoC()}
		now := 0.0
		tick := func() {
			snap.Now = now
			snap.MeasuredTotalW = env.Rack.MeasuredPower()
			snap.CBPowerW = env.Rack.TruePower()
			s.Tick(env, snap)
			env.Rack.AdvanceBatch(scn.DtS, now)
			now += scn.DtS
		}
		for i := 0; i < 120; i++ {
			tick()
		}
		n := 600
		if quick {
			n = 200
		}
		allocs = testing.AllocsPerRun(n, tick)
		t0 := time.Now()
		for i := 0; i < n; i++ {
			tick()
		}
		return allocs, float64(time.Since(t0).Nanoseconds()) / float64(n)
	}
	offAllocs, offNs := run(nil)
	onAllocs, onNs := run(obs.NewPlane(0, obs.DefaultDetectorConfig()))
	return Scenario{Name: "trace_overhead", Metrics: map[string]float64{
		"allocs_per_tick":     offAllocs, // zero-alloc contract with obs off
		"allocs_per_tick_obs": onAllocs,  // informational: span growth amortizes
		"obs_off_ns":          offNs,
		"obs_on_ns":           onNs,
		"trace_overhead":      onNs / math.Max(1, offNs),
	}}
}

// mpcSweeps runs the default closed-loop scenario instrumented and reports
// the mean QP sweeps per MPC solve, warm vs the pre-optimization legacy
// path. Both are deterministic.
func mpcSweeps(quick bool) Scenario {
	scn := sim.DefaultScenario()
	if quick {
		scn.DurationS = 300
	}
	run := func(legacy bool) (mean float64, unconverged float64) {
		cfg := core.DefaultConfig()
		cfg.LegacyQP = legacy
		reg := telemetry.NewRegistry()
		res, err := sim.RunWith(scn, core.New(cfg), sim.RunOptions{Metrics: reg})
		if err != nil {
			fatal(err)
		}
		p, ok := res.Telemetry.Get("qp_iterations")
		if !ok || p.Count == 0 {
			fatal(fmt.Errorf("qp_iterations missing from telemetry"))
		}
		u, _ := res.Telemetry.Value("qp_unconverged_total")
		return p.Value / float64(p.Count), u
	}
	warmMean, warmUnconv := run(false)
	legacyMean, legacyUnconv := run(true)
	return Scenario{Name: "mpc_sweeps", Metrics: map[string]float64{
		"mean_sweeps_warm":   warmMean,
		"mean_sweeps_legacy": legacyMean,
		"sweep_reduction":    legacyMean / math.Max(1e-9, warmMean),
		"unconverged_warm":   warmUnconv,
		"unconverged_legacy": legacyUnconv,
	}}
}

// diurnalScenario builds the pinned event-engine workload: deterministic
// plant (no monitor noise, utilization jitter or ambient swing) under a
// stepped-diurnal demand trace whose plateau levels sit in the settling
// regime (the capped closed loop reaches an exact fixed point there; at
// lighter levels the quantized batch actuator hunts forever and the event
// engine honestly refuses to fast-forward). Rack index i offsets the seeds
// the way cluster and hier sweeps do.
func diurnalScenario(i int, durationS, plateauS float64) sim.Scenario {
	scn := sim.DefaultScenario()
	scn.DurationS = durationS
	scn.BurstDurationS = durationS
	scn.AmbientSwingC = 0
	scn.Rack.MonitorNoiseStd = 0
	scn.Rack.UtilJitterStd = 0
	scn.BatchSpecs = workload.SteadyStateSpecs()
	tr, err := workload.SteppedDiurnal([]float64{0.5, 0.62, 0.75, 0.55}, plateauS, durationS, scn.DtS)
	if err != nil {
		fatal(err)
	}
	scn.Trace = tr
	g := int64(i)
	scn.Interactive.Seed += g
	scn.Rack.Seed += g
	scn.Faults.Seed += g
	return scn
}

// noSprintConfig is the policy for the diurnal scenarios: classic power
// capping at the breaker rating, which is the regime where quiescent spans
// open (an active overload schedule keeps the plant moving).
func noSprintConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.NoSprint = true
	return cfg
}

// seriesBitIdentical reports 1 when every recorded series column of the two
// results is bit-for-bit equal, else 0.
func seriesBitIdentical(a, b *sim.Result) float64 {
	x, y := &a.Series, &b.Series
	cols := [][2][]float64{
		{x.Time, y.Time}, {x.TotalW, y.TotalW}, {x.CBW, y.CBW},
		{x.UPSW, y.UPSW}, {x.PCbW, y.PCbW}, {x.PBatchW, y.PBatchW},
		{x.FreqInter, y.FreqInter}, {x.FreqBatch, y.FreqBatch},
		{x.SoC, y.SoC}, {x.Demand, y.Demand},
	}
	for _, c := range cols {
		if len(c[0]) != len(c[1]) {
			return 0
		}
		for i := range c[0] {
			if math.Float64bits(c[0][i]) != math.Float64bits(c[1][i]) {
				return 0
			}
		}
	}
	return 1
}

// eventEngine pins the discrete-event engine against the tick engine on a
// single-rack diurnal run: bitwise identity of the recorded series, the
// in-process speedup, the fraction of plant ticks the engine closed
// analytically, and the marginal heap allocations per discrete event.
//
// The allocation metric is a two-point measurement: two event runs whose
// durations differ 2× but whose series stride scales with duration, so both
// record the same number of ticks and every per-run and series-append
// allocation cancels in the difference. What remains is the steady-state
// marginal cost of planning and closing additional spans — the zero-alloc
// contract of the event core.
func eventEngine(quick bool) Scenario {
	d1 := 7200.0
	if quick {
		d1 = 3600
	}
	d2 := 2 * d1
	cfg := noSprintConfig()

	countAllocs := func(durationS float64) (float64, *sim.Result) {
		scn := diurnalScenario(0, durationS, 900)
		stride := int(durationS) / 12
		p := core.New(cfg)
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := sim.RunWith(scn, p, sim.RunOptions{Engine: "event", SeriesStride: stride, DropEvents: true})
		runtime.ReadMemStats(&m1)
		if err != nil {
			fatal(err)
		}
		return float64(m1.Mallocs - m0.Mallocs), res
	}
	countAllocs(d1) // warm-up: page in code paths, steady the heap
	a1, r1 := countAllocs(d1)
	a2, r2 := countAllocs(d2)
	dEvents := float64(r2.Engine.Events - r1.Engine.Events)
	allocsPerEvent := (a2 - a1) / math.Max(1, dEvents)
	if allocsPerEvent < 0 {
		allocsPerEvent = 0
	}

	scn := diurnalScenario(0, d1, 900)
	p := core.New(cfg)
	t0 := time.Now()
	tickRes, err := sim.RunWith(scn, p, sim.RunOptions{Engine: "tick"})
	tickNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		fatal(err)
	}
	p = core.New(cfg)
	t0 = time.Now()
	eventRes, err := sim.RunWith(scn, p, sim.RunOptions{Engine: "event"})
	eventNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		fatal(err)
	}

	totalTicks := scn.DurationS / scn.DtS
	return Scenario{Name: "event_engine", Metrics: map[string]float64{
		"bit_identical":      seriesBitIdentical(tickRes, eventRes),
		"speedup_event":      tickNs / math.Max(1, eventNs),
		"tick_ns":            tickNs,
		"event_ns":           eventNs,
		"spans":              float64(eventRes.Engine.Spans),
		"ticks_skipped_frac": float64(eventRes.Engine.TicksSkipped) / totalTicks,
		"allocs_per_event":   allocsPerEvent,
	}}
}

// clusterSweep is the tentpole scale scenario: a 1000-rack day-long
// stepped-diurnal fleet (hourly plateaus) run rack-independent under the
// event engine on the worker pool. A rack subset runs serially under both
// engines for the in-process engine speedup and a bit-identical check at
// every control period (the subset records every control boundary; the
// recorded P_cb/P_batch targets are the controller's decisions, so bitwise
// equality pins decision equivalence there).
func clusterSweep(quick bool) Scenario {
	racks, durationS, subset := 1000, 86400.0, 8
	if quick {
		racks, durationS, subset = 24, 7200.0, 2
	}
	const plateauS = 3600
	cfg := noSprintConfig()
	// Record every control-period boundary on the subset runs: with dt=1 s
	// and the 4 s control period, stride 4 lands every recorded tick on a
	// controller decision.
	ctlStride := int(cfg.ControlPeriodS / sim.DefaultScenario().DtS)

	bitIdentical := 1.0
	var tickNs, eventNs float64
	for i := 0; i < subset; i++ {
		scn := diurnalScenario(i, durationS, plateauS)
		t0 := time.Now()
		tickRes, err := sim.RunWith(scn, core.New(cfg), sim.RunOptions{Engine: "tick", SeriesStride: ctlStride})
		tickNs += float64(time.Since(t0).Nanoseconds())
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		eventRes, err := sim.RunWith(scn, core.New(cfg), sim.RunOptions{Engine: "event", SeriesStride: ctlStride})
		eventNs += float64(time.Since(t0).Nanoseconds())
		if err != nil {
			fatal(err)
		}
		if seriesBitIdentical(tickRes, eventRes) == 0 {
			bitIdentical = 0
		}
	}

	// The full fleet, rack-independent on the worker pool, event engine,
	// hourly series stride (memory stays bounded at building scale).
	jobs := make([]sim.Job, racks)
	for i := range jobs {
		jobs[i] = sim.Job{
			Key:      fmt.Sprintf("rack%d", i),
			Scenario: diurnalScenario(i, durationS, plateauS),
			Policy:   core.New(cfg),
			Opts:     sim.RunOptions{Engine: "event", SeriesStride: 3600},
		}
	}
	t0 := time.Now()
	results, err := sim.RunManyOrdered(jobs)
	fleetNs := float64(time.Since(t0).Nanoseconds())
	if err != nil {
		fatal(err)
	}
	var spans, skipped int
	for _, r := range results {
		spans += r.Engine.Spans
		skipped += r.Engine.TicksSkipped
	}
	totalTicks := float64(racks) * durationS / sim.DefaultScenario().DtS

	return Scenario{Name: "cluster_sweep", Metrics: map[string]float64{
		"racks":              float64(racks),
		"bit_identical":      bitIdentical,
		"speedup_event":      tickNs / math.Max(1, eventNs),
		"tick_subset_ns":     tickNs,
		"event_subset_ns":    eventNs,
		"fleet_event_ns":     fleetNs,
		"spans":              float64(spans),
		"ticks_skipped_frac": float64(skipped) / totalTicks,
	}}
}

// clusterLink measures what the control link costs when the network is
// clean: the same cluster stepped through RunLinked (transport, leases,
// heartbeats and coordinator in the loop every tick) vs the static
// phase-offset Run. With no faults on the wire the link must be near-free —
// the overhead ratio is the regression gate — every lease must renew on
// schedule (zero degraded seconds), and the linked parallel and serial
// sweeps must stay bit-identical.
func clusterLink(quick bool) Scenario {
	cfg := cluster.DefaultConfig()
	if quick {
		cfg.NumRacks = 2
		cfg.Scenario.DurationS = 300
		// Rescale the feeder to the smaller group: N rated draws plus one
		// funded overload slot, mirroring DefaultConfig's provisioning rule.
		rated := cfg.Scenario.Breaker.RatedPower
		cfg.FeederBudgetW = float64(cfg.NumRacks)*rated + 0.25*rated
	}

	t0 := time.Now()
	if _, err := cluster.Run(cfg); err != nil {
		fatal(err)
	}
	staticNs := float64(time.Since(t0).Nanoseconds())

	linkedCfg := cfg
	linkedCfg.Link.Enabled = true
	timeLinked := func(c cluster.Config) (*cluster.LinkedResult, float64) {
		t0 := time.Now()
		res, err := cluster.RunLinked(c)
		if err != nil {
			fatal(err)
		}
		return res, float64(time.Since(t0).Nanoseconds())
	}
	serialCfg := linkedCfg
	serialCfg.Serial = true
	serialRes, _ := timeLinked(serialCfg)
	parRes, linkedNs := timeLinked(linkedCfg)

	return Scenario{Name: "cluster_link", Metrics: map[string]float64{
		"static_ns":          staticNs,
		"linked_ns":          linkedNs,
		"link_overhead":      linkedNs / math.Max(1, staticNs),
		"bit_identical_link": racksEqual(&parRes.Result, &serialRes.Result),
		"degraded_s":         parRes.DegradedS(),
		"feeder_trips":       float64(parRes.FeederTrips),
	}}
}

// clusterHier measures the hierarchical control plane: the building run
// with linked rows (parallel vs serial bit-identity, plus the degraded
// seconds and per-level shadow-breaker record, which must stay zero on a
// clean network) and the row-sharded static sweep (bit-identity and the
// parallel speedup over the serial path).
func clusterHier(quick bool) Scenario {
	cfg := hier.DefaultConfig()
	if quick {
		cfg.Rows = []hier.RowConfig{{Racks: 4}, {Racks: 4}}
		cfg.Scenario.DurationS = 300
	}

	timeLinked := func(c hier.Config) (*hier.Result, float64) {
		t0 := time.Now()
		res, err := hier.RunLinked(c)
		if err != nil {
			fatal(err)
		}
		return res, float64(time.Since(t0).Nanoseconds())
	}
	serialCfg := cfg
	serialCfg.Serial = true
	serialRes, _ := timeLinked(serialCfg)
	parRes, linkedNs := timeLinked(cfg)

	timeSweep := func(c hier.Config) (*hier.SweepResult, float64) {
		t0 := time.Now()
		res, err := hier.RunSweep(c)
		if err != nil {
			fatal(err)
		}
		return res, float64(time.Since(t0).Nanoseconds())
	}
	sweepSerialRes, sweepSerialNs := timeSweep(serialCfg)
	sweepParRes, sweepNs := timeSweep(cfg)

	trips := parRes.BuildingTrips
	for _, n := range parRes.RowTrips() {
		trips += n
	}

	return Scenario{Name: "cluster_hier", Metrics: map[string]float64{
		"hier_linked_ns":       linkedNs,
		"hier_sweep_ns":        sweepNs,
		"hier_sweep_serial_ns": sweepSerialNs,
		"speedup_sweep":        sweepSerialNs / math.Max(1, sweepNs),
		"bit_identical_hier":   hierEqual(parRes, serialRes),
		"bit_identical_sweep":  sweepEqual(sweepParRes, sweepSerialRes),
		"degraded_s":           parRes.DegradedS(),
		"feeder_trips":         float64(trips),
	}}
}

// hierEqual returns 1 when every row of the two hierarchical linked
// results is bit-for-bit equal (per-rack series and building aggregate),
// else 0.
func hierEqual(p, q *hier.Result) float64 {
	if len(p.Rows) != len(q.Rows) {
		return 0
	}
	for i := range p.Rows {
		if racksEqual(&p.Rows[i].Result, &q.Rows[i].Result) == 0 {
			return 0
		}
	}
	for t := range p.BuildingAggregateW {
		if p.BuildingAggregateW[t] != q.BuildingAggregateW[t] {
			return 0
		}
	}
	return 1
}

// sweepEqual returns 1 when every rack series of the two sharded sweeps is
// bit-for-bit equal, else 0.
func sweepEqual(p, q *hier.SweepResult) float64 {
	if len(p.Rows) != len(q.Rows) {
		return 0
	}
	for r := range p.Rows {
		if len(p.Rows[r]) != len(q.Rows[r]) {
			return 0
		}
		for j := range p.Rows[r] {
			a, b := p.Rows[r][j].Series, q.Rows[r][j].Series
			if len(a.TotalW) != len(b.TotalW) {
				return 0
			}
			for t := range a.TotalW {
				if a.TotalW[t] != b.TotalW[t] || a.CBW[t] != b.CBW[t] || a.SoC[t] != b.SoC[t] {
					return 0
				}
			}
		}
	}
	return 1
}

// racksEqual returns 1 when every per-rack, per-tick series of the two
// cluster results is bit-for-bit equal, else 0.
func racksEqual(p, q *cluster.Result) float64 {
	if len(p.Racks) != len(q.Racks) {
		return 0
	}
	for i := range p.Racks {
		a, b := p.Racks[i].Series, q.Racks[i].Series
		if len(a.TotalW) != len(b.TotalW) {
			return 0
		}
		for t := range a.TotalW {
			if a.TotalW[t] != b.TotalW[t] || a.CBW[t] != b.CBW[t] || a.SoC[t] != b.SoC[t] ||
				a.FreqBatch[t] != b.FreqBatch[t] || a.FreqInter[t] != b.FreqInter[t] {
				return 0
			}
		}
	}
	return 1
}

// loadBaseline reads a baseline report strictly: unknown fields are
// rejected and every parse error names the offending location, so a typo in
// a hand-edited baseline (a misspelled metric section, a stray comma) fails
// the gate loudly instead of silently comparing against zero values. The
// not-exists error passes through untouched for the caller's skip path.
func loadBaseline(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()

	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var base Report
	if err := dec.Decode(&base); err != nil {
		var syn *json.SyntaxError
		var typ *json.UnmarshalTypeError
		switch {
		case errors.As(err, &syn):
			return Report{}, fmt.Errorf("baseline %s: byte %d: %v", path, syn.Offset, err)
		case errors.As(err, &typ):
			return Report{}, fmt.Errorf("baseline %s: field %q (byte %d): %v", path, typ.Field, typ.Offset, err)
		default:
			// DisallowUnknownFields errors already carry the field name.
			return Report{}, fmt.Errorf("baseline %s: %v", path, err)
		}
	}
	// One document per file: trailing content means a concatenated or
	// corrupt baseline.
	if dec.More() {
		return Report{}, fmt.Errorf("baseline %s: trailing data after the report document", path)
	}
	if base.Schema != schemaVersion {
		return Report{}, fmt.Errorf("baseline %s: schema %q, this binary writes %q", path, base.Schema, schemaVersion)
	}
	return base, nil
}

// compare checks the report against the baseline and returns 1 on
// regression. Rules by metric name:
//
//	allocs_per_tick, allocs_per_event — may not exceed baseline + 0.01
//	bit_identical*        — may not drop below baseline
//	*sweeps* (not "spans"), *unconverged* (lower better) — may not exceed
//	                        baseline × 1.2
//	speedup_*, sweep_reduction (higher better) — may not drop below × 0.8
//	ticks_skipped_frac (higher better) — may not drop below × 0.9 (the
//	                        event engine must keep closing spans)
//	*_overhead (in-process wall ratio, lower better) — may not exceed
//	                        × 1.3 (both sides measured in the same process,
//	                        so the ratio survives machine changes)
//	degraded_s, feeder_trips — may not exceed baseline (zero in the pinned
//	                        fault-free link scenario)
//	*_ns (wall clock)     — only with -wall: may not exceed × 1.2
//
// A scenario whose GOMAXPROCS differs from the baseline's is skipped with a
// warning: parallel-path ratios measured at different core counts are not
// comparable, and silently holding them to the old bound would gate on the
// machine, not the code. (Baselines without per-scenario core counts —
// written before the field existed — compare as before.)
func compare(rep Report, path string, wall bool) int {
	base, err := loadBaseline(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "bench: no baseline at %s; skipping comparison\n", path)
			return 0
		}
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		return 1
	}
	if base.Quick != rep.Quick {
		fmt.Fprintf(os.Stderr, "bench: baseline quick=%v but run quick=%v; skipping comparison (sweep counts are duration-dependent)\n", base.Quick, rep.Quick)
		return 0
	}

	baseScenarios := map[string]Scenario{}
	for _, s := range base.Scenarios {
		baseScenarios[s.Name] = s
	}
	regressions := 0
	for _, s := range rep.Scenarios {
		bs, ok := baseScenarios[s.Name]
		if !ok || bs.Metrics == nil {
			continue
		}
		if bs.GOMAXPROCS != 0 && bs.GOMAXPROCS != s.GOMAXPROCS {
			fmt.Fprintf(os.Stderr,
				"bench: WARNING %s: baseline ran at GOMAXPROCS=%d, this run at %d; skipping its comparisons (not comparable across core counts)\n",
				s.Name, bs.GOMAXPROCS, s.GOMAXPROCS)
			continue
		}
		bm := bs.Metrics
		for name, cur := range s.Metrics {
			ref, ok := bm[name]
			if !ok {
				continue
			}
			bad := false
			var rule string
			switch {
			case name == "allocs_per_tick" || name == "allocs_per_event":
				bad = cur > ref+0.01
				rule = "must not exceed baseline"
			case strings.HasPrefix(name, "bit_identical"):
				bad = cur < ref
				rule = "must not drop"
			case strings.HasSuffix(name, "_ns"):
				if !wall {
					continue
				}
				bad = cur > ref*1.2
				rule = "wall clock >20% slower"
			case strings.Contains(name, "sweeps") || strings.Contains(name, "unconverged"):
				bad = cur > ref*1.2+1e-9
				rule = ">20% more solver work"
			case strings.HasPrefix(name, "speedup") || name == "sweep_reduction" || name == "parallel_speedup":
				bad = cur < ref*0.8
				rule = ">20% speedup loss"
			case name == "ticks_skipped_frac":
				bad = cur < ref*0.9
				rule = ">10% span-coverage loss"
			case strings.HasSuffix(name, "_overhead"):
				bad = cur > ref*1.3
				rule = ">30% overhead growth"
			case name == "degraded_s" || name == "feeder_trips":
				bad = cur > ref+1e-9
				rule = "must not exceed baseline"
			default:
				continue
			}
			if bad {
				fmt.Fprintf(os.Stderr, "bench: REGRESSION %s/%s: %.4g vs baseline %.4g (%s)\n",
					s.Name, name, cur, ref, rule)
				regressions++
			}
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s\n", regressions, path)
		return 1
	}
	fmt.Printf("bench: no regressions against %s\n", path)
	return 0
}
