// Command tracegen emits the workload traces the evaluation uses as CSV:
// the Wikipedia-like interactive demand trace, or per-benchmark batch
// execution profiles (rate and power versus frequency).
//
// Usage:
//
//	tracegen -kind interactive -duration 900 -seed 1 > interactive.csv
//	tracegen -kind batch > batch_profiles.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"sprintcon/internal/server"
	"sprintcon/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		kind     = flag.String("kind", "interactive", "interactive or batch")
		duration = flag.Float64("duration", 900, "trace duration in seconds (interactive)")
		dt       = flag.Float64("dt", 1, "trace step in seconds (interactive)")
		seed     = flag.Int64("seed", 1, "generator seed (interactive)")
	)
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()

	switch *kind {
	case "interactive":
		cfg := workload.DefaultInteractiveConfig()
		cfg.Seed = *seed
		cfg.BurstEndS = *duration
		tr, err := workload.GenInteractive(cfg, *duration, *dt)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Write([]string{"time_s", "demand_frac"}); err != nil {
			log.Fatal(err)
		}
		for i, d := range tr.Demand {
			rec := []string{
				strconv.FormatFloat(float64(i)**dt, 'f', 3, 64),
				strconv.FormatFloat(d, 'f', 5, 64),
			}
			if err := w.Write(rec); err != nil {
				log.Fatal(err)
			}
		}
		s := tr.Summary()
		fmt.Fprintf(os.Stderr, "interactive trace: mean %.3f min %.3f max %.3f std %.3f\n",
			s.Mean, s.Min, s.Max, s.Std)

	case "batch":
		params := server.DefaultParams()
		co := params.DesignCoeffs(0.9)
		if err := w.Write([]string{"benchmark", "freq_ghz", "rate", "power_w_linear_model"}); err != nil {
			log.Fatal(err)
		}
		for _, spec := range workload.SpecCPU2006() {
			for _, f := range params.PStates.Freqs() {
				rec := []string{
					spec.Name,
					strconv.FormatFloat(f, 'f', 1, 64),
					strconv.FormatFloat(spec.Rate(f, params.PStates.Max()), 'f', 4, 64),
					strconv.FormatFloat(co.KWPerGHz*f+co.CIdleShareW, 'f', 2, 64),
				}
				if err := w.Write(rec); err != nil {
					log.Fatal(err)
				}
			}
		}

	default:
		log.Fatalf("unknown kind %q (want interactive or batch)", *kind)
	}
}
