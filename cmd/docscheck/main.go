// Command docscheck validates the repository's markdown: every relative
// link must point at a file that exists, and every fragment (#anchor) must
// resolve to a heading in the target document, using GitHub's slugging
// rules. External (http/https/mailto) links are not fetched. Code fences
// and inline code spans are ignored, so shell transcripts containing
// bracketed text do not trip the checker.
//
// Usage:
//
//	docscheck README.md DESIGN.md docs/OPERATING.md
//
// Exits non-zero listing every broken link; `make docs-check` wires it
// into CI over the operator-facing documents.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target) and bare reference
// definitions. The target group stops at whitespace or the closing paren,
// which also drops optional titles: [t](a.md "title").
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// headingRe matches ATX headings.
var headingRe = regexp.MustCompile(`^(#{1,6})\s+(.*?)\s*#*\s*$`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docscheck <file.md> [file.md ...]")
		os.Exit(2)
	}
	files := os.Args[1:]

	// Pass 1: collect every document's anchor set, so cross-document
	// fragments (README.md#quickstart) resolve no matter the arg order.
	anchors := map[string]map[string]bool{}
	var broken []string
	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			broken = append(broken, err.Error())
			continue
		}
		anchors[filepath.Clean(f)] = headingAnchors(string(body))
	}

	for _, f := range files {
		body, err := os.ReadFile(f)
		if err != nil {
			continue // already reported
		}
		for _, link := range extractLinks(string(body)) {
			if msg := checkLink(f, link, anchors); msg != "" {
				broken = append(broken, msg)
			}
		}
	}

	if len(broken) > 0 {
		for _, m := range broken {
			fmt.Fprintln(os.Stderr, "docscheck: "+m)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d broken link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) ok\n", len(files))
}

// checkLink validates one link target found in file f. It returns "" when
// the link is fine and a diagnostic otherwise.
func checkLink(f, target string, anchors map[string]map[string]bool) string {
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"):
		return "" // external; not fetched
	}
	path, frag, _ := strings.Cut(target, "#")
	resolved := filepath.Clean(f)
	if path != "" {
		resolved = filepath.Join(filepath.Dir(f), path)
		if _, err := os.Stat(resolved); err != nil {
			return fmt.Sprintf("%s: link %q: %s does not exist", f, target, resolved)
		}
	}
	if frag == "" {
		return ""
	}
	set, scanned := anchors[resolved]
	if !scanned {
		if !strings.HasSuffix(resolved, ".md") {
			return "" // fragment into a non-markdown file; nothing to check
		}
		body, err := os.ReadFile(resolved)
		if err != nil {
			return fmt.Sprintf("%s: link %q: %v", f, target, err)
		}
		set = headingAnchors(string(body))
		anchors[resolved] = set
	}
	if !set[strings.ToLower(frag)] {
		return fmt.Sprintf("%s: link %q: no heading slugs to #%s in %s", f, target, frag, resolved)
	}
	return ""
}

// extractLinks returns the inline link targets of a markdown document,
// skipping fenced code blocks and inline code spans.
func extractLinks(body string) []string {
	var out []string
	fenced := false
	for _, line := range strings.Split(body, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(stripCodeSpans(line), -1) {
			out = append(out, m[1])
		}
	}
	return out
}

// stripCodeSpans blanks `inline code` so bracketed text inside it is not
// parsed as a link.
func stripCodeSpans(line string) string {
	var b strings.Builder
	in := false
	for _, r := range line {
		switch {
		case r == '`':
			in = !in
			b.WriteRune(' ')
		case in:
			b.WriteRune(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// headingAnchors returns the set of GitHub anchor slugs for a document's
// headings, including the -1, -2 suffixes GitHub appends to duplicates.
func headingAnchors(body string) map[string]bool {
	set := map[string]bool{}
	seen := map[string]int{}
	fenced := false
	for _, line := range strings.Split(body, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") || strings.HasPrefix(trimmed, "~~~") {
			fenced = !fenced
			continue
		}
		if fenced {
			continue
		}
		m := headingRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		slug := slugify(m[2])
		if n := seen[slug]; n > 0 {
			set[fmt.Sprintf("%s-%d", slug, n)] = true
		} else {
			set[slug] = true
		}
		seen[slug]++
	}
	return set
}

// slugify applies GitHub's heading-to-anchor rules: lowercase, code and
// emphasis markers dropped, punctuation removed, spaces become hyphens
// (hyphens and underscores survive).
func slugify(h string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(h) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteRune('-')
		}
	}
	return b.String()
}
