// Command report regenerates every experiment and renders a single
// Markdown report (tables, notes, and ASCII series plots for the headline
// comparison) — the one-command artifact for checking a fresh checkout
// against the paper.
//
// Usage:
//
//	report -o REPORT.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sprintcon/internal/experiments"
	"sprintcon/internal/seriesio"
	"sprintcon/internal/sim"
	"sprintcon/internal/svgplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	out := flag.String("o", "REPORT.md", "output Markdown file")
	figDir := flag.String("figdir", "", "also write SVG figures (Fig. 5–7 style) into this directory")
	flag.Parse()

	var b strings.Builder
	fmt.Fprintf(&b, "# SprintCon reproduction report\n\n")
	fmt.Fprintf(&b, "Generated %s by `cmd/report`. Deterministic given the default seeds.\n\n",
		time.Now().UTC().Format(time.RFC3339))

	tables, err := experiments.All()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		writeTable(&b, t)
	}

	// The Fig. 6-style series panel for the headline comparison.
	fmt.Fprintf(&b, "## Power and frequency series (default 15-minute sprint)\n\n")
	all, err := experiments.RunAll(sim.DefaultScenario())
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"SprintCon", "SGCT", "SGCT-V1", "SGCT-V2"} {
		r := all[name]
		fmt.Fprintf(&b, "### %s\n\n```\n", name)
		const width = 100
		fmt.Fprintln(&b, seriesio.PlotRow("total", r.Series.TotalW, width, "W"))
		fmt.Fprintln(&b, seriesio.PlotRow("cb", r.Series.CBW, width, "W"))
		fmt.Fprintln(&b, seriesio.PlotRow("cb budget", r.Series.PCbW, width, "W"))
		fmt.Fprintln(&b, seriesio.PlotRow("ups", r.Series.UPSW, width, "W"))
		fmt.Fprintln(&b, seriesio.PlotRow("freq inter", r.Series.FreqInter, width, "norm"))
		fmt.Fprintln(&b, seriesio.PlotRow("freq batch", r.Series.FreqBatch, width, "norm"))
		fmt.Fprintln(&b, seriesio.PlotRow("ups soc", r.Series.SoC, width, "frac"))
		fmt.Fprintf(&b, "```\n\n")
		if len(r.Events) > 0 {
			fmt.Fprintf(&b, "Events:\n\n```\n")
			for _, e := range r.Events {
				fmt.Fprintln(&b, e)
			}
			fmt.Fprintf(&b, "```\n\n")
		}
	}

	if *figDir != "" {
		if err := writeFigures(*figDir, all); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(&b, "SVG figures written to %s.\n", *figDir)
	}

	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}

// writeFigures renders the paper-style power and frequency charts per
// policy as SVG files.
func writeFigures(dir string, all map[string]*sim.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, r := range all {
		slug := strings.ToLower(strings.ReplaceAll(name, " ", "-"))
		power := svgplot.Chart{
			Title:  name + " — power behaviour (paper Fig. 5/6 style)",
			XLabel: "time (s)",
			YLabel: "power (W)",
			X:      r.Series.Time,
			Series: []svgplot.Series{
				{Name: "total", Y: r.Series.TotalW},
				{Name: "CB actual", Y: r.Series.CBW},
				{Name: "CB budget", Y: r.Series.PCbW},
				{Name: "UPS", Y: r.Series.UPSW},
			},
		}
		if err := renderTo(filepath.Join(dir, slug+"-power.svg"), power); err != nil {
			return err
		}
		freq := svgplot.Chart{
			Title:  name + " — frequency behaviour (paper Fig. 7 style)",
			XLabel: "time (s)",
			YLabel: "normalized frequency",
			X:      r.Series.Time,
			Series: []svgplot.Series{
				{Name: "interactive", Y: r.Series.FreqInter},
				{Name: "batch", Y: r.Series.FreqBatch},
			},
		}
		if err := renderTo(filepath.Join(dir, slug+"-freq.svg"), freq); err != nil {
			return err
		}
	}
	return nil
}

func renderTo(path string, c svgplot.Chart) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Render(f)
}

// writeTable renders one experiment table as a Markdown table.
func writeTable(b *strings.Builder, t *experiments.Table) {
	fmt.Fprintf(b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(b, "| %s |\n", strings.Join(t.Columns, " | "))
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(b, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(b, "\n> %s\n", n)
	}
	fmt.Fprintln(b)
}
