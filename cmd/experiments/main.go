// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all          # every experiment, DESIGN.md order
//	experiments -exp fig5         # one experiment
//	experiments -exp fig6 -plot   # with ASCII series plots
//
// Experiments: fig1 fig2 fig3 fig5 fig6 fig7 fig8a fig8b headline
// ablation-controller ablation-schedule ablation-ups sensitivity qos
// daily-cost faults partition telemetry obs hier all.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// experiment run (the usual entry point for optimizing the simulator).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sprintcon/internal/experiments"
	"sprintcon/internal/seriesio"
	"sprintcon/internal/sim"
	"sprintcon/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		exp        = flag.String("exp", "all", "experiment id (see package doc)")
		plot       = flag.Bool("plot", false, "print ASCII sparkline plots for time-series figures")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the experiment to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Print(err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
				log.Print(err)
			}
		}()
	}

	switch *exp {
	case "all":
		tables, err := experiments.All()
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	case "fig1":
		print1(experiments.Fig1PerWattSpeedup())
	case "fig2":
		print1(experiments.Fig2TripCurve())
	case "fig3":
		print1(experiments.Fig3PeriodicSprint())
	case "fig5":
		t, res, err := experiments.Fig5Uncontrolled()
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
		if *plot {
			plotSeries(res)
		}
	case "fig6":
		t, all, err := experiments.Fig6PowerBehavior()
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
		if *plot {
			for _, name := range []string{"SprintCon", "SGCT-V1", "SGCT-V2"} {
				fmt.Printf("--- %s ---\n", name)
				plotSeries(all[name])
			}
		}
	case "fig7":
		print1(experiments.Fig7FrequencyBehavior())
	case "fig8a":
		print1(experiments.Fig8aTimeUse())
	case "fig8b":
		print1(experiments.Fig8bDoD())
	case "headline":
		print1(experiments.Headline())
	case "ablation-controller":
		print1(experiments.AblationController())
	case "ablation-schedule":
		print1(experiments.AblationOverloadSchedule())
	case "ablation-ups":
		print1(experiments.AblationUPSControl())
	case "sensitivity":
		print1(experiments.Sensitivity())
	case "qos":
		print1(experiments.QoSComparison())
	case "daily-cost":
		print1(experiments.DailyCost())
	case "ablation-estimation":
		print1(experiments.AblationEstimation())
	case "cluster":
		print1(experiments.ClusterStagger())
	case "battery-provisioning":
		print1(experiments.BatteryProvisioning())
	case "burst-regimes":
		print1(experiments.BurstRegimes())
	case "efficiency":
		print1(experiments.EnergyEfficiency())
	case "sprinting-benefit":
		print1(experiments.SprintingBenefit())
	case "faults":
		print1(experiments.FaultMatrix())
	case "partition":
		print1(experiments.PartitionMatrix())
	case "telemetry":
		print1(experiments.TelemetrySummary())
	case "obs":
		print1(experiments.AlertCoverage())
	case "hier":
		print1(experiments.HierarchyExceedance())
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func print1(t *experiments.Table, err error) {
	if err != nil {
		log.Fatal(err)
	}
	t.Fprint(os.Stdout)
}

func plotSeries(res *sim.Result) {
	const width = 90
	s := &res.Series
	fmt.Println(seriesio.PlotRow("total", s.TotalW, width, "W"))
	fmt.Println(seriesio.PlotRow("cb", s.CBW, width, "W"))
	fmt.Println(seriesio.PlotRow("cb budget", s.PCbW, width, "W"))
	fmt.Println(seriesio.PlotRow("ups", s.UPSW, width, "W"))
	fmt.Println(seriesio.PlotRow("freq inter", s.FreqInter, width, "norm"))
	fmt.Println(seriesio.PlotRow("freq batch", s.FreqBatch, width, "norm"))
	fmt.Println(seriesio.PlotRow("ups soc", s.SoC, width, "frac"))
	fmt.Println()
}
