package sprintcon

import (
	"testing"
)

func TestFacadeRunSprintCon(t *testing.T) {
	scn := DefaultScenario()
	scn.DurationS = 120
	scn.BurstDurationS = 120
	scn.BatchDeadlineS = 110
	res, err := Run(scn, New(DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "SprintCon" {
		t.Fatalf("policy = %q", res.Policy)
	}
	if res.AvgFreqInter < 0.99 {
		t.Fatalf("interactive avg freq %v", res.AvgFreqInter)
	}
}

func TestFacadeBaselines(t *testing.T) {
	for _, name := range []string{"sgct", "sgct-v1", "sgct-v2"} {
		p, err := NewBaseline(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() == "" {
			t.Fatalf("%s has no name", name)
		}
	}
	if _, err := NewBaseline("nope"); err == nil {
		t.Fatal("unknown baseline should error")
	}
}

func TestFacadeSpecCatalog(t *testing.T) {
	if got := len(SpecCPU2006()); got != 8 {
		t.Fatalf("benchmarks = %d", got)
	}
}
