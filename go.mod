module sprintcon

go 1.22
